package sim

import (
	"fmt"
	"sort"

	"nvramfs/internal/cache"
	"nvramfs/internal/consist"
	"nvramfs/internal/prep"
)

// Broadcast drives several steppers over one op stream in lockstep while
// sharing the operation's cache-independent work — the consistency
// protocol, file-size tracking, and the per-file touched-client index —
// across all of them. The report sweeps use it to simulate every NVRAM
// size of a row for one decode pass and one protocol pass.
//
// Sharing is sound because for the NVRAM-staging cache models the
// consistency server's evolution is a pure function of the op stream,
// never of cache contents: Open decides and clears the recall obligation
// itself (so the follow-up Flushed call is a no-op whether or not the
// recalled cache held dirty bytes), Close/Write/Deleted/FlushedClient are
// unconditional, and replacement write-backs bypass the server entirely.
// The two couplings that would break this are rejected by NewBroadcast:
// the volatile model (whose Fsync informs the server) and fault injection
// (whose delivery stage feeds cache-dependent write-backs into the
// server's replay detector).
//
// Every stepper's state after Apply is exactly the state Stepper.apply
// would have produced for the same op; TestBroadcastMatchesIndependentRuns
// holds the two paths equal.
type Broadcast struct {
	steppers   []*Stepper
	server     *consist.Server
	sizes      map[uint64]int64
	writesOnly bool
	// touched lists, per file in ascending order, the clients that ever
	// issued a read or write on it — a conservative superset of the
	// clients whose caches can hold the file's blocks, letting deletes
	// skip the (no-op) block walk on every other client.
	touched map[uint64][]uint32
	// noAdvance marks steppers whose model kind has a no-op Advance
	// (unified and write-aside stage writes in NVRAM and run no delayed
	// write-back clock), letting Apply skip the per-stepper, per-client
	// interface calls that would do nothing.
	noAdvance []bool
	// shard is the client shard every yoked stepper runs in (the zero
	// value is unsharded); model access is gated on ownership exactly as
	// in Stepper.apply, so K shard broadcasts over the same stream
	// partition a row's per-client work without diverging.
	shard ShardSel
	idx   int
}

// NewBroadcast yokes the given fresh steppers together: their consistency
// servers and size tables are replaced by shared ones, so they must not
// have applied any operations yet. All steppers must agree on WritesOnly,
// use an NVRAM-staging model, and run without fault injection.
func NewBroadcast(steppers []*Stepper) (*Broadcast, error) {
	if len(steppers) == 0 {
		return nil, fmt.Errorf("sim: broadcast over no steppers")
	}
	for i, d := range steppers {
		switch {
		case d.idx != 0:
			return nil, fmt.Errorf("sim: broadcast stepper %d already at op %d", i, d.idx)
		case d.cfg.Faults != nil:
			return nil, fmt.Errorf("sim: broadcast stepper %d has fault injection", i)
		case d.cfg.Model == cache.ModelVolatile:
			return nil, fmt.Errorf("sim: broadcast stepper %d uses the volatile model", i)
		case d.cfg.WritesOnly != steppers[0].cfg.WritesOnly:
			return nil, fmt.Errorf("sim: broadcast stepper %d disagrees on WritesOnly", i)
		case d.cfg.Shard != steppers[0].cfg.Shard:
			return nil, fmt.Errorf("sim: broadcast stepper %d disagrees on client shard", i)
		}
	}
	if err := steppers[0].cfg.Shard.validate(); err != nil {
		return nil, err
	}
	b := &Broadcast{
		steppers:   steppers,
		server:     steppers[0].server,
		sizes:      steppers[0].sizes,
		writesOnly: steppers[0].cfg.WritesOnly,
		shard:      steppers[0].cfg.Shard,
		touched:    make(map[uint64][]uint32),
	}
	b.noAdvance = make([]bool, len(steppers))
	for i, d := range steppers {
		d.server = b.server
		d.sizes = b.sizes
		b.noAdvance[i] = d.cfg.Model == cache.ModelUnified || d.cfg.Model == cache.ModelWriteAside
	}
	return b, nil
}

// Steppers returns the yoked steppers (for Finish/Release).
func (b *Broadcast) Steppers() []*Stepper { return b.steppers }

// touch records that a client read or wrote a file.
func (b *Broadcast) touch(client uint32, file uint64) {
	tc := b.touched[file]
	i := sort.Search(len(tc), func(i int) bool { return tc[i] >= client })
	if i < len(tc) && tc[i] == client {
		return
	}
	tc = append(tc, 0)
	copy(tc[i+1:], tc[i:])
	tc[i] = client
	b.touched[file] = tc
}

// Apply applies one operation to every stepper, running the shared
// protocol and bookkeeping once. It mirrors Stepper.apply case by case.
func (b *Broadcast) Apply(op prep.Op) error {
	owned := b.shard.Owns(op.Client)
	for i, d := range b.steppers {
		d.now = op.Time
		d.curClient = op.Client
		if !owned {
			continue
		}
		m, err := d.model(op.Client)
		if err != nil {
			return err
		}
		if !b.noAdvance[i] {
			m.Advance(op.Time)
		}
	}

	switch op.Kind {
	case prep.Open:
		res := b.server.Open(op.Client, op.File, op.WriteMode)
		ownRecall := res.RecallFrom != consist.NoClient && b.shard.Owns(res.RecallFrom)
		for _, d := range b.steppers {
			if ownRecall {
				wm, err := d.model(res.RecallFrom)
				if err != nil {
					return err
				}
				wm.Advance(op.Time)
				d.curClient = res.RecallFrom
				if wm.FlushFile(op.Time, op.File, cache.CauseCallback) > 0 {
					// A no-op on the shared server (Open cleared the
					// obligation above), kept for parity with Stepper.apply.
					b.server.Flushed(res.RecallFrom, op.File)
				}
				d.curClient = op.Client
			}
			if res.JustDisabled {
				for _, c := range d.clientOrder() {
					d.curClient = c
					d.models[c].Invalidate(op.Time, op.File)
				}
				d.curClient = op.Client
			} else if res.InvalidateOpener && owned {
				d.models[op.Client].Invalidate(op.Time, op.File)
			}
		}

	case prep.Close:
		b.server.Close(op.Client, op.File)

	case prep.Read:
		if b.writesOnly {
			break
		}
		if owned {
			b.touch(op.Client, op.File)
		}
		if b.server.Disabled(op.File) {
			if owned {
				for _, d := range b.steppers {
					d.models[op.Client].NoteConcurrent(true, op.Range.Len())
					if h := d.cfg.Cache.Hooks; h != nil && h.Read != nil {
						h.Read(op.Time, op.File, op.Range)
					}
				}
			}
			break
		}
		size := b.sizes[op.File]
		if op.Range.End > size {
			size = op.Range.End
			b.sizes[op.File] = size
		}
		if owned {
			for _, d := range b.steppers {
				d.models[op.Client].Read(op.Time, op.File, op.Range, size)
			}
		}

	case prep.Write:
		if owned {
			b.touch(op.Client, op.File)
		}
		if op.Range.End > b.sizes[op.File] {
			b.sizes[op.File] = op.Range.End
		}
		if b.server.Disabled(op.File) {
			if owned {
				for _, d := range b.steppers {
					d.models[op.Client].NoteConcurrent(false, op.Range.Len())
					if h := d.cfg.Cache.Hooks; h != nil && h.Write != nil {
						h.Write(op.Time, op.File, op.Range, cache.CauseConcurrent, d.cfg.Model.StagesWritesInNVRAM())
					}
				}
			}
		} else if owned {
			for _, d := range b.steppers {
				d.models[op.Client].Write(op.Time, op.File, op.Range)
			}
		}
		b.server.Write(op.Client, op.File)

	case prep.DeleteRange:
		tc := b.touched[op.File]
		for i, d := range b.steppers {
			// Every client's clock still advances at the delete timestamp;
			// the block walk runs only where blocks can exist.
			if !b.noAdvance[i] {
				for _, c := range d.clientOrder() {
					d.curClient = c
					d.models[c].Advance(op.Time)
				}
			}
			for _, c := range tc {
				if int(c) < len(d.models) && d.models[c] != nil {
					d.curClient = c
					d.models[c].DeleteRange(op.Time, op.File, op.Range)
				}
			}
			d.curClient = op.Client
			// Exactly-once across shards: the issuing client's shard fires it.
			if h := d.cfg.Cache.Hooks; owned && h != nil && h.Delete != nil {
				h.Delete(op.Time, op.File, op.Range)
			}
		}
		if size := b.sizes[op.File]; op.Range.Start == 0 && op.Range.End >= size {
			delete(b.sizes, op.File)
			b.server.Deleted(op.File)
		} else if op.Range.End >= size {
			b.sizes[op.File] = op.Range.Start
		}

	case prep.Fsync:
		if owned {
			for _, d := range b.steppers {
				d.models[op.Client].Fsync(op.Time, op.File)
			}
		}

	case prep.MigrateFlush:
		if owned {
			for _, d := range b.steppers {
				d.models[op.Client].FlushAll(op.Time, cache.CauseMigration)
			}
		}
		b.server.FlushedClient(op.Client)

	default:
		return fmt.Errorf("sim: unknown op kind %v", op.Kind)
	}

	b.idx++
	for _, d := range b.steppers {
		d.idx++
	}
	return nil
}
