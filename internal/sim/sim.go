// Package sim drives trace-driven simulations of the client cache models:
// it feeds canonical trace operations through per-client caches and the
// Sprite consistency protocol, and accumulates the cluster-wide traffic
// that the paper's Figures 3-6 report.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"slices"

	"nvramfs/internal/cache"
	"nvramfs/internal/consist"
	"nvramfs/internal/faults"
	"nvramfs/internal/interval"
	"nvramfs/internal/nvram"
	"nvramfs/internal/prep"
)

// Config parameterizes one simulation run.
type Config struct {
	// Model selects the cache organization.
	Model cache.ModelKind
	// Cache is the per-client cache configuration. Rand and Schedule may
	// be left nil; Run installs a seeded source for the random policy.
	Cache cache.Config
	// Seed drives the random replacement policy.
	Seed int64
	// WritesOnly ignores read operations, reproducing the paper's
	// Figure 3 omniscient setup, which measured write traffic without the
	// effects of read traffic on cache replacement.
	WritesOnly bool
	// FilesHint pre-sizes the per-file bookkeeping maps (typically
	// prep.Stats.Files); zero means no hint.
	FilesHint int
	// Faults, when non-nil, routes every write-back through a
	// fault-injecting retry stage (package faults) before it reaches the
	// consistency server and any downstream hooks. nil (the default)
	// leaves the write-back path untouched, byte-identical to a build
	// without the stage.
	Faults *faults.Profile
	// DurableImage, when set together with Faults, durably mirrors the
	// fault stage's NVRAM-parked backlog into an on-disk image
	// (faults.Injector.AttachImage): the crash harness can then kill the
	// process and recover the backlog from the file. nil (the default)
	// keeps everything in memory, byte-identical to pre-image builds.
	DurableImage *nvram.Image
	// Shard restricts this stepper to one client shard: the stepper still
	// consumes the full op stream (replicating the consistency protocol
	// and file-size tracking, which are pure functions of it), but only
	// instantiates and drives the cache models of clients it owns. K
	// steppers with Shard {0..K-1, K} over the same stream partition the
	// per-client work exactly; RunSharded merges their results into the
	// sequential answer. The zero value is unsharded.
	Shard ShardSel
}

// ShardSel selects one client shard of a sharded run. Clients are
// assigned round-robin by id: shard Index of Shards owns client c iff
// c % Shards == Index. The zero value (Shards <= 1) owns every client.
//
// Client sharding is exact for every cache organization because the two
// pieces of cross-client state — the consistency server and the file
// size table — are pure functions of the op stream, never of cache
// contents: Open decides recalls from its own lastWriter bookkeeping and
// clears the obligation itself (the recall flush's Flushed call is
// always a no-op), Close/Write/Deleted/FlushedClient are unconditional,
// the volatile model's Fsync-informs-server rule depends only on the
// configured model kind, and replacement write-backs bypass the server
// entirely. Each shard therefore replicates that state privately and
// stays bit-identical to the sequential run's.
type ShardSel struct {
	Index  int
	Shards int
}

// Enabled reports whether the selector names a real shard (Shards > 1).
func (s ShardSel) Enabled() bool { return s.Shards > 1 }

// Owns reports whether client c belongs to this shard.
func (s ShardSel) Owns(c uint32) bool {
	return s.Shards <= 1 || int(c)%s.Shards == s.Index
}

func (s ShardSel) validate() error {
	if s.Shards > 1 && (s.Index < 0 || s.Index >= s.Shards) {
		return fmt.Errorf("sim: shard index %d out of range for %d shards", s.Index, s.Shards)
	}
	return nil
}

// Result is the outcome of a simulation run.
type Result struct {
	// Traffic is the cluster-wide total.
	Traffic cache.Traffic
	// PerClient holds each client's counters.
	PerClient map[uint32]*cache.Traffic
	// Recalls and DisableEvents summarize the consistency server.
	Recalls       int64
	DisableEvents int64
	// ReplayedWrites counts write-back RPCs the server detected as
	// idempotent re-deliveries (lost acks); zero without fault injection.
	ReplayedWrites int64
	// Faults carries the fault stage's counters when Config.Faults was
	// set, nil otherwise.
	Faults *faults.Stats
	// EndTime is the time of the last processed op.
	EndTime int64
}

// Run simulates a canonical op stream under the configured cache model,
// consuming the source in one forward pass: memory stays O(cache size)
// regardless of trace length.
func Run(src prep.Source, cfg Config) (*Result, error) {
	s := NewStepper(src, cfg)
	if err := s.StepAll(); err != nil {
		return nil, err
	}
	res := s.Finish()
	s.Release()
	return res, nil
}

// RunOps simulates a materialized op slice (tests and small tools).
func RunOps(ops []prep.Op, cfg Config) (*Result, error) {
	return Run(prep.NewSliceSource(ops), cfg)
}

// Stepper runs a simulation one trace operation at a time. Run drives it
// straight through; the crash-injection harness (internal/crash) instead
// halts it at an arbitrary event boundary and inspects the mid-run cache
// and server state. State after StepTo(k) is exactly the state Run passes
// through after applying ops[:k], so a stepped run and a straight run of
// the same prefix are interchangeable.
type Stepper struct {
	src    prep.Source
	idx    int
	cfg    Config
	server *consist.Server
	// models is indexed directly by client id (ids are small and dense in
	// the Sprite-like traces); nil entries are clients not yet seen.
	models  []cache.Model
	sizes   map[uint64]int64
	clients []uint32 // known clients, sorted; rebuilt lazily
	sorted  bool
	now     int64
	// curClient is the client whose cache model is currently being
	// driven; the fault stage reads it because the cache hooks carry no
	// client identity.
	curClient uint32
	fault     *faults.Injector
}

// NewStepper prepares a stepwise simulation pulling from src. A nil source
// is allowed for callers that push operations themselves via Apply (the
// report drivers' lockstep sweeps decode a trace once and feed every
// configuration's stepper the same op).
func NewStepper(src prep.Source, cfg Config) *Stepper {
	if cfg.Cache.BlockSize <= 0 {
		cfg.Cache.BlockSize = cache.DefaultBlockSize
	}
	if cfg.Cache.Arena == nil {
		// One arena per run: every client's evictions feed every client's
		// allocations. Callers that run many configurations (the report
		// drivers) pass a longer-lived arena instead.
		cfg.Cache.Arena = cache.NewBlockArena()
	}
	d := &Stepper{
		src:    src,
		cfg:    cfg,
		server: consist.NewServerSized(cfg.FilesHint),
		sizes:  make(map[uint64]int64, cfg.FilesHint),
	}
	if cfg.Faults != nil {
		d.installFaultStage()
	}
	return d
}

// installFaultStage interposes the fault injector between the cache
// models' write-backs and the downstream world: committed deliveries are
// presented to the consistency server for replay detection, then
// forwarded to whatever hooks the caller installed. Reads and deletes
// pass through untouched.
func (d *Stepper) installFaultStage() {
	inner := d.cfg.Cache.Hooks
	d.fault = faults.NewInjector(*d.cfg.Faults, func(now int64, dv faults.Delivery, replay bool) {
		if first := d.server.DeliverWriteback(dv.File, dv.Seq); !first || replay {
			return
		}
		if inner != nil && inner.Write != nil {
			inner.Write(now, dv.File, interval.Range{Start: dv.Start, End: dv.End},
				cache.Cause(dv.Cause), dv.Stable)
		}
	})
	if d.cfg.DurableImage != nil {
		d.fault.AttachImage(d.cfg.DurableImage)
	}
	hooks := &cache.ServerHooks{
		Write: func(now int64, file uint64, r interval.Range, cause cache.Cause, stable bool) {
			d.fault.Deliver(now, faults.Delivery{
				Client: d.curClient,
				File:   file,
				Start:  r.Start,
				End:    r.End,
				Cause:  uint8(cause),
				Stable: stable,
			})
		},
	}
	if inner != nil {
		hooks.Read = inner.Read
		hooks.Delete = inner.Delete
	}
	d.cfg.Cache.Hooks = hooks
}

// Index returns how many operations have been applied.
func (d *Stepper) Index() int { return d.idx }

// Now returns the time of the last applied operation (0 before the first).
func (d *Stepper) Now() int64 { return d.now }

// Server exposes the consistency server for invariant checks.
func (d *Stepper) Server() *consist.Server { return d.server }

// CurrentClient returns the client whose cache model the stepper is
// currently driving. Cache hooks carry no client identity, so an external
// write-back stage (the daemon interposes its own, the way
// installFaultStage does internally) reads the originating client here
// while a hook is firing.
func (d *Stepper) CurrentClient() uint32 { return d.curClient }

// StepTo pulls and applies operations until k have been applied. It cannot
// rewind: k below the current index is an error, as is a stream that ends
// before the k-th operation.
func (d *Stepper) StepTo(k int) error {
	if k < d.idx {
		return fmt.Errorf("sim: StepTo(%d) cannot rewind below %d", k, d.idx)
	}
	for d.idx < k {
		op, ok, err := d.src.Next()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("sim: op stream ended after %d ops, before StepTo(%d)", d.idx, k)
		}
		if err := d.apply(op); err != nil {
			return err
		}
		d.idx++
	}
	return nil
}

// StepAll drains the source, applying every remaining operation.
func (d *Stepper) StepAll() error {
	for {
		op, ok, err := d.src.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := d.apply(op); err != nil {
			return err
		}
		d.idx++
	}
}

// Apply applies one caller-supplied operation, bypassing the source. The
// lockstep sweep drivers use this to share a single decode pass across
// many simultaneous configurations.
func (d *Stepper) Apply(op prep.Op) error {
	if err := d.apply(op); err != nil {
		return err
	}
	d.idx++
	return nil
}

// StepToContext is StepTo with cooperative cancellation: the context is
// checked every few hundred operations, so a long run (for example one
// riding out a never-recovering outage) returns promptly when its grid
// is cancelled.
func (d *Stepper) StepToContext(ctx context.Context, k int) error {
	const checkEvery = 256
	for d.idx < k {
		next := d.idx + checkEvery
		if next > k {
			next = k
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := d.StepTo(next); err != nil {
			return err
		}
	}
	if k < d.idx {
		return d.StepTo(k) // surface the rewind error
	}
	return nil
}

// Faults exposes the fault injector (nil without Config.Faults) so the
// crash harness can compose a crash with the in-flight backlog.
func (d *Stepper) Faults() *faults.Injector { return d.fault }

// ForEachModel visits each client's cache model in client-id order. The
// visited client is also made current for the fault stage, so a harness
// that drives models directly (crash injection) attributes any resulting
// write-backs to the right client.
func (d *Stepper) ForEachModel(fn func(client uint32, m cache.Model)) {
	for _, c := range d.clientOrder() {
		d.curClient = c
		fn(c, d.models[c])
	}
}

// Finish ends the trace — every cache advances to the last applied
// operation's time and flushes its remaining dirty bytes, as Run does —
// and collects the Result. Call Release afterwards to recycle the blocks.
func (d *Stepper) Finish() *Result {
	d.finish()
	res := &Result{
		PerClient:      make(map[uint32]*cache.Traffic, len(d.clients)),
		Recalls:        d.server.Recalls,
		DisableEvents:  d.server.DisableEvents,
		ReplayedWrites: d.server.ReplayedWrites,
		EndTime:        d.now,
	}
	if d.fault != nil {
		st := d.fault.Stats()
		res.Faults = &st
	}
	for _, c := range d.clientOrder() {
		m := d.models[c]
		res.PerClient[c] = m.Traffic()
		res.Traffic.Add(m.Traffic())
	}
	return res
}

// Release returns every model's blocks to the arena. Traffic counters are
// owned by the models but survive Release (a Result references them); the
// blocks go back to the arena for the caller's next run.
func (d *Stepper) Release() {
	for _, m := range d.models {
		if m != nil {
			m.Release()
		}
	}
}

// model returns (creating on first use) the cache for a client.
func (d *Stepper) model(client uint32) (cache.Model, error) {
	if int(client) < len(d.models) {
		if m := d.models[client]; m != nil {
			return m, nil
		}
	} else {
		grown := make([]cache.Model, int(client)+1)
		copy(grown, d.models)
		d.models = grown
	}
	cc := d.cfg.Cache
	if cc.Rand == nil && cc.Policy == cache.Random {
		// Only the random policy consumes the rand source; skipping the
		// others avoids one ~5KB source per (client, configuration).
		cc.Rand = rand.New(rand.NewSource(d.cfg.Seed + int64(client)*7919))
	}
	m, err := cache.NewModel(d.cfg.Model, cc)
	if err != nil {
		return nil, fmt.Errorf("sim: client %d: %w", client, err)
	}
	d.models[client] = m
	d.clients = append(d.clients, client)
	d.sorted = false
	return m, nil
}

func (d *Stepper) apply(op prep.Op) error {
	d.now = op.Time
	if d.fault != nil {
		d.fault.Advance(op.Time)
	}
	d.curClient = op.Client
	// A sharded stepper replays the whole stream but touches only the
	// cache models of clients it owns; the server and size-table updates
	// below run unconditionally so every shard's replica of that shared
	// state evolves exactly as the sequential run's does.
	owned := d.cfg.Shard.Owns(op.Client)
	var m cache.Model
	if owned {
		var err error
		m, err = d.model(op.Client)
		if err != nil {
			return err
		}
		m.Advance(op.Time)
	}

	switch op.Kind {
	case prep.Open:
		res := d.server.Open(op.Client, op.File, op.WriteMode)
		if res.RecallFrom != consist.NoClient && d.cfg.Shard.Owns(res.RecallFrom) {
			wm, err := d.model(res.RecallFrom)
			if err != nil {
				return err
			}
			wm.Advance(op.Time)
			d.curClient = res.RecallFrom
			if wm.FlushFile(op.Time, op.File, cache.CauseCallback) > 0 {
				// A no-op on the server (Open cleared the obligation
				// itself), so skipping it on shards that don't own the
				// recalled client cannot make their replicas diverge.
				d.server.Flushed(res.RecallFrom, op.File)
			}
			d.curClient = op.Client
		}
		if res.JustDisabled {
			// Concurrent write-sharing: every cached copy is flushed and
			// invalidated; subsequent I/O bypasses the caches. clientOrder
			// holds only owned clients, so the walk shards itself.
			for _, c := range d.clientOrder() {
				d.curClient = c
				d.models[c].Invalidate(op.Time, op.File)
			}
			d.curClient = op.Client
		} else if res.InvalidateOpener && owned {
			m.Invalidate(op.Time, op.File)
		}

	case prep.Close:
		d.server.Close(op.Client, op.File)

	case prep.Read:
		if d.cfg.WritesOnly {
			return nil
		}
		if d.server.Disabled(op.File) {
			if owned {
				m.NoteConcurrent(true, op.Range.Len())
				if h := d.cfg.Cache.Hooks; h != nil && h.Read != nil {
					h.Read(op.Time, op.File, op.Range)
				}
			}
			return nil
		}
		size := d.sizes[op.File]
		if op.Range.End > size {
			size = op.Range.End
			d.sizes[op.File] = size
		}
		if owned {
			m.Read(op.Time, op.File, op.Range, size)
		}

	case prep.Write:
		if op.Range.End > d.sizes[op.File] {
			d.sizes[op.File] = op.Range.End
		}
		if d.server.Disabled(op.File) {
			if owned {
				m.NoteConcurrent(false, op.Range.Len())
				if h := d.cfg.Cache.Hooks; h != nil && h.Write != nil {
					h.Write(op.Time, op.File, op.Range, cache.CauseConcurrent, d.cfg.Model.StagesWritesInNVRAM())
				}
			}
			d.server.Write(op.Client, op.File)
			return nil
		}
		if owned {
			m.Write(op.Time, op.File, op.Range)
		}
		d.server.Write(op.Client, op.File)

	case prep.DeleteRange:
		// Deletion is cluster-visible: every client's cached copy of the
		// dead bytes is discarded, and the writer's dirty bytes die in
		// place (absorption). Client order, not map order: the models'
		// hooks feed a shared server whose replay must be deterministic.
		for _, c := range d.clientOrder() {
			d.curClient = c
			d.models[c].Advance(op.Time)
			d.models[c].DeleteRange(op.Time, op.File, op.Range)
		}
		d.curClient = op.Client
		// The delete hook fires in the issuing client's shard, keeping it
		// exactly-once across a sharded run, as in a sequential one.
		if h := d.cfg.Cache.Hooks; owned && h != nil && h.Delete != nil {
			h.Delete(op.Time, op.File, op.Range)
		}
		if size := d.sizes[op.File]; op.Range.Start == 0 && op.Range.End >= size {
			delete(d.sizes, op.File)
			d.server.Deleted(op.File)
		} else if op.Range.End >= size {
			d.sizes[op.File] = op.Range.Start
		}

	case prep.Fsync:
		if owned {
			m.Fsync(op.Time, op.File)
		}
		// Volatile caches flush to the server's disk on fsync; the server
		// must learn that whether or not this shard owns the client, and
		// the rule depends only on the configured model kind (every
		// client's model is constructed with cfg.Model).
		if d.cfg.Model == cache.ModelVolatile {
			d.server.Flushed(op.Client, op.File)
		}

	case prep.MigrateFlush:
		if owned {
			m.FlushAll(op.Time, cache.CauseMigration)
		}
		d.server.FlushedClient(op.Client)

	default:
		return fmt.Errorf("sim: unknown op kind %v", op.Kind)
	}
	return nil
}

// clientOrder returns the known clients sorted by id. The slice is cached
// and re-sorted only when a new client appears, since cluster-wide events
// (deletes, sharing disables) consult it per operation.
func (d *Stepper) clientOrder() []uint32 {
	if !d.sorted {
		slices.Sort(d.clients)
		d.sorted = true
	}
	return d.clients
}

// finish advances every cache to the end of the trace and flushes the
// remaining dirty bytes (counted pessimistically as server traffic, as the
// paper's figures do).
func (d *Stepper) finish() {
	for _, c := range d.clientOrder() {
		d.curClient = c
		m := d.models[c]
		m.Advance(d.now)
		m.FlushAll(d.now, cache.CauseEnd)
	}
	if d.fault != nil {
		d.fault.Close(d.now)
	}
}

// BlocksForBytes converts a memory size in bytes to whole cache blocks.
func BlocksForBytes(bytes, blockSize int64) int {
	if blockSize <= 0 {
		blockSize = cache.DefaultBlockSize
	}
	n := bytes / blockSize
	if n < 1 {
		n = 1
	}
	return int(n)
}

// MB is one megabyte (the unit of the paper's memory-size sweeps).
const MB = int64(1 << 20)
