package sim

import (
	"fmt"

	"nvramfs/internal/cache"
	"nvramfs/internal/prep"
)

// RunSharded simulates a canonical op stream by client shards: K
// steppers, each owning the clients with id % K == k, every one
// replaying a fresh cursor over the full stream, merged into the exact
// sequential Result (see ShardSel for why the decomposition is exact).
// par, when non-nil, runs the K shard bodies with whatever parallelism
// it can offer — the report drivers pass engine.Nested so shard helpers
// draw down the shared -j token budget; nil runs them serially. shards
// <= 1 degenerates to Run.
//
// Fault injection and caller hooks are rejected: the fault stage feeds
// cache-dependent write-backs into the server's replay detector (so
// shard replicas would diverge), and hooks would observe per-shard
// streams in nondeterministic interleavings.
func RunSharded(rep prep.Replayable, cfg Config, shards int, par func(n int, fn func(i int) error) error) (*Result, error) {
	if cfg.Faults != nil {
		return nil, fmt.Errorf("sim: sharded run cannot inject faults")
	}
	if cfg.Cache.Hooks != nil {
		return nil, fmt.Errorf("sim: sharded run cannot install hooks")
	}
	if shards <= 1 {
		src, err := rep.Ops()
		if err != nil {
			return nil, err
		}
		return Run(src, cfg)
	}
	results := make([]*Result, shards)
	body := func(k int) error {
		src, err := rep.Ops()
		if err != nil {
			return err
		}
		scfg := cfg
		scfg.Shard = ShardSel{Index: k, Shards: shards}
		// Arenas are single-goroutine free lists; each shard must build
		// its own rather than share the caller's.
		scfg.Cache.Arena = cache.NewBlockArena()
		if err := scfg.Shard.validate(); err != nil {
			return err
		}
		res, err := Run(src, scfg)
		if err != nil {
			return err
		}
		results[k] = res
		return nil
	}
	if par == nil {
		par = func(n int, fn func(i int) error) error {
			for i := 0; i < n; i++ {
				if err := fn(i); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := par(shards, body); err != nil {
		return nil, err
	}
	return MergeShardResults(results)
}

// MergeShardResults combines per-shard results into the sequential
// Result: traffic sums field-wise in shard order (all counters are
// int64 sums over disjoint client sets, so the merge is exact), the
// per-client maps union disjointly, and the replicated server counters
// are cross-checked for agreement — a mismatch means a shard's protocol
// replica diverged, which is a bug, not a tolerable approximation.
func MergeShardResults(results []*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("sim: merging no shard results")
	}
	merged := &Result{
		PerClient:      make(map[uint32]*cache.Traffic),
		Recalls:        results[0].Recalls,
		DisableEvents:  results[0].DisableEvents,
		ReplayedWrites: results[0].ReplayedWrites,
		EndTime:        results[0].EndTime,
	}
	for k, res := range results {
		if res == nil {
			return nil, fmt.Errorf("sim: shard %d produced no result", k)
		}
		if res.Recalls != merged.Recalls || res.DisableEvents != merged.DisableEvents ||
			res.ReplayedWrites != merged.ReplayedWrites || res.EndTime != merged.EndTime {
			return nil, fmt.Errorf("sim: shard %d server replica diverged (recalls %d/%d, disables %d/%d)",
				k, res.Recalls, merged.Recalls, res.DisableEvents, merged.DisableEvents)
		}
		merged.Traffic.Add(&res.Traffic)
		for c, t := range res.PerClient {
			if _, dup := merged.PerClient[c]; dup {
				return nil, fmt.Errorf("sim: client %d appears in two shards", c)
			}
			merged.PerClient[c] = t
		}
	}
	return merged, nil
}
