package trace

import (
	"bytes"
	"testing"
	"time"
)

// writeTrace builds a trace file from events.
func writeTrace(t *testing.T, name string, clients int, events []Event) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: name, Clients: clients, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func reader(t *testing.T, buf *bytes.Buffer) *Reader {
	t.Helper()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMergePreservesOrderAndSeparatesIDs(t *testing.T) {
	a := writeTrace(t, "a", 2, []Event{
		{Time: 10, Client: 1, Op: OpWrite, File: 5, Length: 100},
		{Time: 30, Client: 1, Op: OpDelete, File: 5},
	})
	b := writeTrace(t, "b", 2, []Event{
		{Time: 5, Client: 1, Op: OpWrite, File: 5, Length: 50},
		{Time: 20, Client: 1, Op: OpMigrate, Target: 2},
	})
	var merged bytes.Buffer
	if err := Merge(&merged, "ab", reader(t, a), reader(t, b)); err != nil {
		t.Fatal(err)
	}
	r := reader(t, &merged)
	if h := r.Header(); h.Name != "ab" || h.Clients != 4 {
		t.Fatalf("header: %+v", h)
	}
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("%d events", len(evs))
	}
	// Global time order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("merge broke time order")
		}
	}
	// Input 1's ids are shifted.
	if evs[0].Client != 1+ClientStride || evs[0].File != 5+FileStride {
		t.Fatalf("first event (from b) not shifted: %+v", evs[0])
	}
	if evs[1].Client != 1 || evs[1].File != 5 {
		t.Fatalf("event from a wrongly shifted: %+v", evs[1])
	}
	// Migration targets shift with their trace.
	if evs[2].Op != OpMigrate || evs[2].Target != 2+ClientStride {
		t.Fatalf("migrate not shifted: %+v", evs[2])
	}
}

func TestMergeEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := Merge(&out, "x"); err == nil {
		t.Fatal("merging nothing succeeded")
	}
}

func TestFilterByClients(t *testing.T) {
	src := writeTrace(t, "src", 3, []Event{
		{Time: 1, Client: 1, Op: OpWrite, File: 1, Length: 10},
		{Time: 2, Client: 2, Op: OpWrite, File: 2, Length: 10},
		{Time: 3, Client: 1, Op: OpMigrate, Target: 3},
		{Time: 4, Client: 3, Op: OpMigrate, Target: 2},
	})
	var out bytes.Buffer
	kept, err := Filter(&out, reader(t, src), "c2", ByClients(2))
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Fatalf("kept %d, want the client-2 write and the migrate targeting 2", kept)
	}
	evs, err := reader(t, &out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Client != 2 || evs[1].Target != 2 {
		t.Fatalf("wrong events kept: %+v", evs)
	}
}

func TestFilterByWindowComposes(t *testing.T) {
	src := writeTrace(t, "src", 2, []Event{
		{Time: 1, Client: 1, Op: OpWrite, File: 1, Length: 10},
		{Time: 50, Client: 1, Op: OpWrite, File: 1, Length: 10},
		{Time: 99, Client: 2, Op: OpWrite, File: 2, Length: 10},
		{Time: 150, Client: 1, Op: OpWrite, File: 1, Length: 10},
	})
	var out bytes.Buffer
	kept, err := Filter(&out, reader(t, src), "win", ByWindow(10, 100), ByClients(1))
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 {
		t.Fatalf("kept %d, want 1 (time 50, client 1)", kept)
	}
}

func TestShift(t *testing.T) {
	src := writeTrace(t, "src", 2, []Event{
		{Time: 10, Client: 1, Op: OpWrite, File: 1, Length: 10},
		{Time: 20, Client: 1, Op: OpWrite, File: 1, Length: 10},
	})
	var out bytes.Buffer
	if err := Shift(&out, reader(t, src), "shifted", 100); err != nil {
		t.Fatal(err)
	}
	evs, err := reader(t, &out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Time != 110 || evs[1].Time != 120 {
		t.Fatalf("times: %d, %d", evs[0].Time, evs[1].Time)
	}
	// Negative shifts clamp at zero but preserve order.
	var out2 bytes.Buffer
	if err := Shift(&out2, reader(t, &out), "back", -115); err != nil {
		t.Fatal(err)
	}
	evs2, err := reader(t, &out2).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if evs2[0].Time != 0 || evs2[1].Time != 5 {
		t.Fatalf("clamped times: %d, %d", evs2[0].Time, evs2[1].Time)
	}
}
