package trace

import (
	"container/heap"
	"fmt"
	"io"
	"time"
)

// This file provides stream tooling over the binary trace format: merging
// several traces into one (preserving time order), filtering a trace by
// client or time window, and time-shifting — the operations needed to
// compose custom workloads out of recorded pieces.

// Merge combines several trace streams into one, preserving global time
// order. Client ids are offset per input so distinct traces never collide
// (input i's clients are shifted by i*ClientStride), and file ids are
// offset likewise. The header takes name, with Clients/Duration covering
// all inputs.
func Merge(w io.Writer, name string, inputs ...*Reader) error {
	if len(inputs) == 0 {
		return fmt.Errorf("trace: nothing to merge")
	}
	var clients int
	var duration time.Duration
	for _, in := range inputs {
		h := in.Header()
		clients += h.Clients
		if h.Duration > duration {
			duration = h.Duration
		}
	}
	tw, err := NewWriter(w, Header{Name: name, Clients: clients, Duration: duration})
	if err != nil {
		return err
	}

	// k-way merge over the already-sorted inputs.
	h := &mergeHeap{}
	pull := func(src int) error {
		ev, err := inputs[src].Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		heap.Push(h, mergeHead{ev, src})
		return nil
	}
	for i := range inputs {
		if err := pull(i); err != nil {
			return err
		}
	}
	for h.Len() > 0 {
		top := heap.Pop(h).(mergeHead)
		ev := top.ev
		ev.Client += uint32(top.src * ClientStride)
		if ev.Op == OpMigrate {
			ev.Target += uint32(top.src * ClientStride)
		}
		ev.File += uint64(top.src) * FileStride
		if err := tw.Write(ev); err != nil {
			return err
		}
		if err := pull(top.src); err != nil {
			return err
		}
	}
	return tw.Close()
}

// ClientStride separates the client-id spaces of merged traces.
const ClientStride = 1000

// FileStride separates the file-id spaces of merged traces.
const FileStride = 1 << 40

type mergeHead struct {
	ev  Event
	src int
}

type mergeHeap []mergeHead

func (m mergeHeap) Len() int { return len(m) }
func (m mergeHeap) Less(i, j int) bool {
	if m[i].ev.Time != m[j].ev.Time {
		return m[i].ev.Time < m[j].ev.Time
	}
	return m[i].src < m[j].src
}
func (m mergeHeap) Swap(i, j int)       { m[i], m[j] = m[j], m[i] }
func (m *mergeHeap) Push(x interface{}) { *m = append(*m, x.(mergeHead)) }
func (m *mergeHeap) Pop() interface{} {
	old := *m
	n := len(old)
	v := old[n-1]
	*m = old[:n-1]
	return v
}

// FilterFunc selects events to keep.
type FilterFunc func(Event) bool

// ByClients keeps events from the given clients (migration targets are
// kept if either endpoint matches).
func ByClients(clients ...uint32) FilterFunc {
	set := make(map[uint32]bool, len(clients))
	for _, c := range clients {
		set[c] = true
	}
	return func(e Event) bool {
		if set[e.Client] {
			return true
		}
		return e.Op == OpMigrate && set[e.Target]
	}
}

// ByWindow keeps events with from <= Time < to (microseconds).
func ByWindow(from, to int64) FilterFunc {
	return func(e Event) bool { return e.Time >= from && e.Time < to }
}

// Filter copies in to w, keeping only events accepted by every filter.
// The header is preserved apart from the new name.
func Filter(w io.Writer, in *Reader, name string, filters ...FilterFunc) (kept int64, err error) {
	h := in.Header()
	h.Name = name
	tw, err := NewWriter(w, h)
	if err != nil {
		return 0, err
	}
	for {
		ev, err := in.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return kept, err
		}
		ok := true
		for _, f := range filters {
			if !f(ev) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := tw.Write(ev); err != nil {
			return kept, err
		}
		kept++
	}
	return kept, tw.Close()
}

// Shift copies in to w with all event times offset by delta microseconds
// (events whose shifted time would be negative are clamped to zero; order
// is preserved).
func Shift(w io.Writer, in *Reader, name string, delta int64) error {
	h := in.Header()
	h.Name = name
	tw, err := NewWriter(w, h)
	if err != nil {
		return err
	}
	for {
		ev, err := in.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		ev.Time += delta
		if ev.Time < 0 {
			ev.Time = 0
		}
		if err := tw.Write(ev); err != nil {
			return err
		}
	}
	return tw.Close()
}
