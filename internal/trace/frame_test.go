package trace

import (
	"testing"
	"time"
)

func frameCases() []Event {
	return []Event{
		{Time: 0, Op: OpOpen, Client: 0, File: 1, Flags: FlagRead | FlagWrite},
		{Time: 1_000_000, Op: OpWrite, Client: 3, File: 42, Offset: 8192, Length: 4096},
		{Time: 1_000_001, Op: OpRead, Client: 3, File: 42, Offset: 0, Length: 512},
		{Time: 2_000_000, Op: OpClose, Client: 1, File: 7},
		{Time: 2_500_000, Op: OpDelete, Client: 1, File: 7},
		{Time: 3_000_000, Op: OpMigrate, Client: 2, File: 9, Target: 4},
		{Time: int64(72 * time.Hour / time.Microsecond), Op: OpWrite, Client: 9999, File: 1 << 40, Offset: 1 << 30, Length: 1},
	}
}

func TestEventFrameRoundTrip(t *testing.T) {
	for _, want := range frameCases() {
		buf := AppendEvent(nil, want)
		got, n, err := DecodeEvent(buf)
		if err != nil {
			t.Fatalf("DecodeEvent(%+v): %v", want, err)
		}
		if n != len(buf) {
			t.Fatalf("DecodeEvent consumed %d of %d bytes", n, len(buf))
		}
		if got != want {
			t.Fatalf("round trip changed event:\n got  %+v\n want %+v", got, want)
		}
	}
}

func TestEventFrameDecodeWithTrailer(t *testing.T) {
	// A frame body may carry trailing payload (future extension); Decode
	// must report exactly the event's length.
	e := Event{Time: 5, Op: OpWrite, Client: 1, File: 2, Offset: 0, Length: 64}
	buf := AppendEvent(nil, e)
	withTrailer := append(append([]byte(nil), buf...), 0xAA, 0xBB)
	got, n, err := DecodeEvent(withTrailer)
	if err != nil || n != len(buf) || got != e {
		t.Fatalf("decode with trailer: %+v, n=%d, err=%v", got, n, err)
	}
}

func TestEventFrameTruncation(t *testing.T) {
	for _, e := range frameCases() {
		buf := AppendEvent(nil, e)
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := DecodeEvent(buf[:cut]); err == nil {
				t.Fatalf("decoding %d of %d bytes of %+v succeeded", cut, len(buf), e)
			}
		}
	}
}

func TestEventFrameRejectsBadOp(t *testing.T) {
	buf := AppendEvent(nil, Event{Time: 1, Op: OpRead, Client: 1, File: 1, Length: 1})
	buf[1] = 0xEE // op byte follows the one-byte time varint
	if _, _, err := DecodeEvent(buf); err == nil {
		t.Fatal("bad op byte decoded")
	}
}

func TestEventFrameRejectsInvalidEvent(t *testing.T) {
	// A write with zero length fails Validate; encode it by hand since
	// AppendEvent assumes valid input.
	var buf []byte
	buf = append(buf, 1, byte(OpWrite), 1, 1, 0, 0) // time,op,client,file,offset,length
	if _, _, err := DecodeEvent(buf); err == nil {
		t.Fatal("invalid event decoded")
	}
}
