package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 0, Client: 1, Op: OpOpen, File: 42, Flags: FlagRead | FlagWrite},
		{Time: 10, Client: 1, Op: OpWrite, File: 42, Offset: 0, Length: 4096},
		{Time: 10, Client: 2, Op: OpOpen, File: 7, Flags: FlagRead},
		{Time: 25, Client: 2, Op: OpRead, File: 7, Offset: 100, Length: 12},
		{Time: 30, Client: 1, Op: OpFsync, File: 42},
		{Time: 40, Client: 1, Op: OpTruncate, File: 42, Offset: 2048},
		{Time: 55, Client: 1, Op: OpMigrate, Target: 3},
		{Time: 60, Client: 1, Op: OpDelete, File: 42},
		{Time: 61, Client: 2, Op: OpClose, File: 7},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	h := Header{Name: "test-trace", Clients: 3, Duration: 24 * time.Hour, Seed: 99}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	events := sampleEvents()
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatalf("Write(%v): %v", e, err)
		}
	}
	if w.Count() != int64(len(events)) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Header(); got != h {
		t.Fatalf("header = %+v, want %+v", got, h)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
	// Reading past the end keeps returning EOF.
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("Read after end: %v", err)
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Time: 100, Client: 1, Op: OpFsync, File: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Time: 99, Client: 1, Op: OpFsync, File: 1}); err == nil {
		t.Fatal("out-of-order event accepted")
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Event{
		{Time: 1, Op: Op(200), File: 1},
		{Time: 1, Op: OpWrite, File: 1, Length: 0},
		{Time: 1, Op: OpWrite, File: 1, Offset: -1, Length: 5},
		{Time: 1, Op: OpOpen, File: 1, Flags: 0},
		{Time: -1, Op: OpFsync, File: 1},
	}
	for _, e := range bad {
		if err := w.Write(e); err == nil {
			t.Errorf("invalid event accepted: %+v", e)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sampleEvents() {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop off the terminator and some trailing bytes: reading must fail
	// rather than silently succeed.
	trunc := full[:len(full)-4]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll()
	if err == nil {
		t.Fatal("truncated trace read without error")
	}
}

func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpMigrate.String() != "migrate" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Fatalf("unknown op name = %q", Op(99).String())
	}
}

// randEvents builds a valid random event stream.
func randEvents(rng *rand.Rand, n int) []Event {
	evs := make([]Event, 0, n)
	var tm int64
	for i := 0; i < n; i++ {
		tm += rng.Int63n(1000)
		e := Event{
			Time:   tm,
			Client: uint32(rng.Intn(40)),
			File:   uint64(rng.Intn(500)),
			Op:     Op(1 + rng.Intn(int(opMax-1))),
		}
		switch e.Op {
		case OpRead, OpWrite:
			e.Offset = rng.Int63n(1 << 20)
			e.Length = 1 + rng.Int63n(1<<16)
		case OpTruncate:
			e.Offset = rng.Int63n(1 << 20)
		case OpOpen:
			e.Flags = uint8(1 + rng.Intn(3))
		case OpMigrate:
			e.Target = uint32(rng.Intn(40))
		}
		evs = append(evs, e)
	}
	return evs
}

// Property: encode/decode is an identity on arbitrary valid event streams.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		events := randEvents(rng, int(nRaw))
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Name: "q", Clients: 40, Seed: seed})
		if err != nil {
			return false
		}
		for _, e := range events {
			if err := w.Write(e); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range got {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	events := randEvents(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, Header{Name: "bench"})
		for _, e := range events {
			if err := w.Write(e); err != nil {
				b.Fatal(err)
			}
		}
		w.Close()
		b.SetBytes(int64(buf.Len()))
	}
}
