package trace

// Standalone single-event codec for the daemon wire protocol. The file
// codec above delta-encodes times against stream state, which a
// request/response protocol cannot share across connections; frames
// instead carry each event self-contained with an absolute time. Field
// order and varint encoding mirror the file format, so a trace file body
// and a frame body differ only in the time field's interpretation.

import (
	"encoding/binary"
	"fmt"
)

// AppendEvent appends e's frame encoding to dst and returns the extended
// slice. The event must be valid (Validate); AppendEvent does not check.
func AppendEvent(dst []byte, e Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(e.Time))
	dst = append(dst, byte(e.Op))
	dst = binary.AppendUvarint(dst, uint64(e.Client))
	dst = binary.AppendUvarint(dst, e.File)
	dst = binary.AppendUvarint(dst, uint64(e.Offset))
	switch e.Op {
	case OpRead, OpWrite:
		dst = binary.AppendUvarint(dst, uint64(e.Length))
	case OpOpen:
		dst = append(dst, e.Flags)
	case OpMigrate:
		dst = binary.AppendUvarint(dst, uint64(e.Target))
	}
	return dst
}

// DecodeEvent decodes one frame-encoded event from b, returning the event
// and the number of bytes consumed. Errors on truncation, an invalid op,
// or an event that fails Validate.
func DecodeEvent(b []byte) (Event, int, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: truncated event frame at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	t, err := next()
	if err != nil {
		return Event{}, 0, err
	}
	if pos >= len(b) {
		return Event{}, 0, fmt.Errorf("trace: truncated event frame at byte %d", pos)
	}
	e := Event{Time: int64(t), Op: Op(b[pos])}
	pos++
	if !e.Op.Valid() {
		return Event{}, 0, fmt.Errorf("trace: invalid op byte %d in event frame", byte(e.Op))
	}
	client, err := next()
	if err != nil {
		return Event{}, 0, err
	}
	e.Client = uint32(client)
	if e.File, err = next(); err != nil {
		return Event{}, 0, err
	}
	off, err := next()
	if err != nil {
		return Event{}, 0, err
	}
	e.Offset = int64(off)
	switch e.Op {
	case OpRead, OpWrite:
		l, err := next()
		if err != nil {
			return Event{}, 0, err
		}
		e.Length = int64(l)
	case OpOpen:
		if pos >= len(b) {
			return Event{}, 0, fmt.Errorf("trace: truncated event frame at byte %d", pos)
		}
		e.Flags = b[pos]
		pos++
	case OpMigrate:
		tgt, err := next()
		if err != nil {
			return Event{}, 0, err
		}
		e.Target = uint32(tgt)
	}
	if err := e.Validate(); err != nil {
		return Event{}, 0, fmt.Errorf("trace: corrupt event frame: %w", err)
	}
	return e, pos, nil
}
