package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Binary trace format
//
//	magic     "NVFT" (4 bytes)
//	version   uvarint (currently 1)
//	name      uvarint length + bytes
//	clients   uvarint
//	duration  uvarint (microseconds)
//	seed      varint
//	events    repeated:
//	    dt      uvarint  (time delta from previous event, microseconds)
//	    op      1 byte   (0 terminates the stream)
//	    client  uvarint
//	    file    uvarint
//	    offset  uvarint
//	    length  uvarint          (read/write only)
//	    flags   1 byte           (open only)
//	    target  uvarint          (migrate only)
//
// Times are delta-encoded because trace events are sorted by time; deltas
// are small and varint-encode compactly.

var magic = [4]byte{'N', 'V', 'F', 'T'}

const formatVersion = 1

// ErrBadMagic is returned when a trace stream does not begin with the trace
// file magic.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file)")

// Writer streams events to a trace file.
type Writer struct {
	w        *bufio.Writer
	lastTime int64
	buf      [binary.MaxVarintLen64]byte
	count    int64
	closed   bool
}

// NewWriter writes a trace header to w and returns a Writer for appending
// events in non-decreasing time order.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	tw := &Writer{w: bw}
	tw.uvarint(formatVersion)
	tw.uvarint(uint64(len(h.Name)))
	bw.WriteString(h.Name)
	tw.uvarint(uint64(h.Clients))
	tw.uvarint(uint64(h.Duration / time.Microsecond))
	tw.varint(h.Seed)
	return tw, bw.Flush()
}

func (tw *Writer) uvarint(v uint64) {
	n := binary.PutUvarint(tw.buf[:], v)
	tw.w.Write(tw.buf[:n])
}

func (tw *Writer) varint(v int64) {
	n := binary.PutVarint(tw.buf[:], v)
	tw.w.Write(tw.buf[:n])
}

// Write appends one event. Events must be supplied in non-decreasing time
// order.
func (tw *Writer) Write(e Event) error {
	if tw.closed {
		return errors.New("trace: write after Close")
	}
	if err := e.Validate(); err != nil {
		return err
	}
	if e.Time < tw.lastTime {
		return fmt.Errorf("trace: event time %d before previous %d", e.Time, tw.lastTime)
	}
	tw.uvarint(uint64(e.Time - tw.lastTime))
	tw.lastTime = e.Time
	tw.w.WriteByte(byte(e.Op))
	tw.uvarint(uint64(e.Client))
	tw.uvarint(e.File)
	tw.uvarint(uint64(e.Offset))
	switch e.Op {
	case OpRead, OpWrite:
		tw.uvarint(uint64(e.Length))
	case OpOpen:
		tw.w.WriteByte(e.Flags)
	case OpMigrate:
		tw.uvarint(uint64(e.Target))
	}
	tw.count++
	return nil
}

// Count returns the number of events written so far.
func (tw *Writer) Count() int64 { return tw.count }

// Close terminates the event stream and flushes buffered data. It does not
// close the underlying writer.
func (tw *Writer) Close() error {
	if tw.closed {
		return nil
	}
	tw.closed = true
	tw.uvarint(0) // dt of terminator (ignored)
	tw.w.WriteByte(0)
	return tw.w.Flush()
}

// Reader streams events from a trace file.
type Reader struct {
	r        *bufio.Reader
	data     []byte // non-nil: decode directly from this slice instead of r
	pos      int    // next undecoded byte in data
	header   Header
	lastTime int64
	index    int64 // events decoded so far, for error positions
	done     bool
}

// NewReader reads the trace header from r and returns a Reader positioned at
// the first event.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	clients, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	durUS, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return nil, err
	}
	return &Reader{
		r: br,
		header: Header{
			Name:     string(name),
			Clients:  int(clients),
			Duration: time.Duration(durUS) * time.Microsecond,
			Seed:     seed,
		},
	}, nil
}

// NewBytesReader returns a Reader decoding an in-memory encoded trace.
// It produces exactly the stream NewReader would, but reads varints
// straight off the slice instead of through per-byte io.ByteReader
// calls — the hot path for the report workspace, which re-decodes its
// cached encodings once per simulation cell.
func NewBytesReader(data []byte) (*Reader, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, ErrBadMagic
	}
	tr := &Reader{data: data, pos: len(magic)}
	ver, err := tr.uvarintSlice()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", ver)
	}
	nameLen, err := tr.uvarintSlice()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	if uint64(len(data)-tr.pos) < nameLen {
		return nil, io.ErrUnexpectedEOF
	}
	name := string(data[tr.pos : tr.pos+int(nameLen)])
	tr.pos += int(nameLen)
	clients, err := tr.uvarintSlice()
	if err != nil {
		return nil, err
	}
	durUS, err := tr.uvarintSlice()
	if err != nil {
		return nil, err
	}
	seed, err := tr.varintSlice()
	if err != nil {
		return nil, err
	}
	tr.header = Header{
		Name:     name,
		Clients:  int(clients),
		Duration: time.Duration(durUS) * time.Microsecond,
		Seed:     seed,
	}
	return tr, nil
}

// uvarintSlice decodes the next uvarint from the slice; one-byte values
// (the overwhelmingly common case for delta times and field values) stay
// on the inlined fast path.
func (tr *Reader) uvarintSlice() (uint64, error) {
	if tr.pos < len(tr.data) {
		if b := tr.data[tr.pos]; b < 0x80 {
			tr.pos++
			return uint64(b), nil
		}
	}
	v, n := binary.Uvarint(tr.data[tr.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	tr.pos += n
	return v, nil
}

func (tr *Reader) varintSlice() (int64, error) {
	v, n := binary.Varint(tr.data[tr.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	tr.pos += n
	return v, nil
}

func (tr *Reader) byteSlice() (byte, error) {
	if tr.pos >= len(tr.data) {
		return 0, io.ErrUnexpectedEOF
	}
	b := tr.data[tr.pos]
	tr.pos++
	return b, nil
}

// readSlice is Read's slice-backed fast path: identical decode logic and
// error positions, without the buffered-reader indirection.
func (tr *Reader) readSlice() (Event, error) {
	dt, err := tr.uvarintSlice()
	if err != nil {
		return Event{}, fmt.Errorf("trace: event %d: reading time delta: %w", tr.index, err)
	}
	opByte, err := tr.byteSlice()
	if err != nil {
		return Event{}, fmt.Errorf("trace: event %d: reading op: %w", tr.index, err)
	}
	if opByte == 0 {
		tr.done = true
		return Event{}, io.EOF
	}
	e := Event{Op: Op(opByte)}
	if !e.Op.Valid() {
		return Event{}, fmt.Errorf("trace: event %d: invalid op byte %d", tr.index, opByte)
	}
	if dt > uint64(math.MaxInt64-tr.lastTime) {
		return Event{}, fmt.Errorf("trace: event %d: time delta %d after %dus wraps the clock (non-monotonic stream)",
			tr.index, dt, tr.lastTime)
	}
	tr.lastTime += int64(dt)
	e.Time = tr.lastTime
	client, err := tr.uvarintSlice()
	if err != nil {
		return Event{}, err
	}
	e.Client = uint32(client)
	file, err := tr.uvarintSlice()
	if err != nil {
		return Event{}, err
	}
	e.File = file
	off, err := tr.uvarintSlice()
	if err != nil {
		return Event{}, err
	}
	e.Offset = int64(off)
	switch e.Op {
	case OpRead, OpWrite:
		l, err := tr.uvarintSlice()
		if err != nil {
			return Event{}, err
		}
		e.Length = int64(l)
	case OpOpen:
		if e.Flags, err = tr.byteSlice(); err != nil {
			return Event{}, err
		}
	case OpMigrate:
		tgt, err := tr.uvarintSlice()
		if err != nil {
			return Event{}, err
		}
		e.Target = uint32(tgt)
	}
	if err := e.Validate(); err != nil {
		return Event{}, fmt.Errorf("trace: event %d: corrupt event: %w", tr.index, err)
	}
	tr.index++
	return e, nil
}

// Header returns the trace file header.
func (tr *Reader) Header() Header { return tr.header }

// Read returns the next event, or io.EOF after the last event.
//
// Decoded event times are guaranteed non-decreasing: times are stored as
// unsigned deltas, so the only way a decoded stream could go backwards is
// the delta wrapping the int64 clock — which Read rejects with the event's
// position. Downstream consumers (prep canonicalization) rely on this and
// skip their own ordering re-check for Reader-fed streams.
func (tr *Reader) Read() (Event, error) {
	if tr.done {
		return Event{}, io.EOF
	}
	if tr.data != nil {
		return tr.readSlice()
	}
	dt, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Event{}, fmt.Errorf("trace: event %d: reading time delta: %w", tr.index, noEOF(err))
	}
	opByte, err := tr.r.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("trace: event %d: reading op: %w", tr.index, noEOF(err))
	}
	if opByte == 0 {
		tr.done = true
		return Event{}, io.EOF
	}
	e := Event{Op: Op(opByte)}
	if !e.Op.Valid() {
		return Event{}, fmt.Errorf("trace: event %d: invalid op byte %d", tr.index, opByte)
	}
	if dt > uint64(math.MaxInt64-tr.lastTime) {
		return Event{}, fmt.Errorf("trace: event %d: time delta %d after %dus wraps the clock (non-monotonic stream)",
			tr.index, dt, tr.lastTime)
	}
	tr.lastTime += int64(dt)
	e.Time = tr.lastTime
	client, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Event{}, noEOF(err)
	}
	e.Client = uint32(client)
	if e.File, err = binary.ReadUvarint(tr.r); err != nil {
		return Event{}, noEOF(err)
	}
	off, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Event{}, noEOF(err)
	}
	e.Offset = int64(off)
	switch e.Op {
	case OpRead, OpWrite:
		l, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return Event{}, noEOF(err)
		}
		e.Length = int64(l)
	case OpOpen:
		if e.Flags, err = tr.r.ReadByte(); err != nil {
			return Event{}, noEOF(err)
		}
	case OpMigrate:
		tgt, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return Event{}, noEOF(err)
		}
		e.Target = uint32(tgt)
	}
	// A well-formed writer only produces valid events, so an invalid one
	// here means the stream is corrupt (or not a trace at all).
	if err := e.Validate(); err != nil {
		return Event{}, fmt.Errorf("trace: event %d: corrupt event: %w", tr.index, err)
	}
	tr.index++
	return e, nil
}

// Next implements EventSource over the remaining events.
func (tr *Reader) Next() (Event, bool, error) {
	e, err := tr.Read()
	if err == io.EOF {
		return Event{}, false, nil
	}
	if err != nil {
		return Event{}, false, err
	}
	return e, true, nil
}

// ReadAll drains the remaining events into a slice.
func (tr *Reader) ReadAll() ([]Event, error) {
	var evs []Event
	for {
		e, err := tr.Read()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		evs = append(evs, e)
	}
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF: a well-formed trace ends
// with an explicit terminator, so EOF mid-event is corruption.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
