package trace

// File-sharded views of an event stream.
//
// Per-file analyses (block lifetimes, write schedules) depend only on the
// subsequence of events touching each file: canonicalization in
// internal/prep keeps per-file state, the consistency protocol keeps
// per-file state, and lifetime intervals never cross files. That makes
// the event stream exactly decomposable by file — shard k of K sees every
// event whose file hashes to k, in the original order — with one
// exception: OpMigrate carries no file and flushes every file its process
// has open, so migrate events are replicated to all shards. Each shard's
// filtered stream preserves the source's monotonic-time guarantee, so
// prep may keep trusting ordered sources.

// FileShard maps a file id to a shard index in [0, shards). The hash is a
// splitmix64-style finalizer so consecutively allocated file ids spread
// evenly instead of striping; the mapping is a pure function of (file,
// shards) and therefore stable across runs, platforms, and -j.
func FileShard(file uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := file
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// ShardFilter is an EventSource that passes through the subsequence of
// events belonging to one file shard: events whose FileShard(File, Shards)
// equals Shard, plus every OpMigrate event (migrations have no file and
// affect all of them). Shard 0 of 1 passes everything.
type ShardFilter struct {
	Src    EventSource
	Shard  int
	Shards int
}

// Next implements EventSource.
func (f *ShardFilter) Next() (Event, bool, error) {
	for {
		e, ok, err := f.Src.Next()
		if err != nil || !ok {
			return e, ok, err
		}
		if e.Op == OpMigrate || FileShard(e.File, f.Shards) == f.Shard {
			return e, true, nil
		}
	}
}
