package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must reject or
// cleanly EOF on any input — never panic, never allocate absurdly — and
// any event it does yield must be valid.
func FuzzReader(f *testing.F) {
	// Seed with a well-formed trace and a few mutations of it.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "seed", Clients: 3, Duration: time.Hour, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range sampleEvents() {
		if err := w.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("NVFT"))
	f.Add([]byte{})
	mutated := append([]byte(nil), good...)
	if len(mutated) > 10 {
		mutated[8] ^= 0xff
		mutated[len(mutated)-3] ^= 0x55
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		for i := 0; i < 100000; i++ {
			e, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // corruption detected cleanly
			}
			if verr := e.Validate(); verr != nil {
				t.Fatalf("reader yielded invalid event %+v: %v", e, verr)
			}
		}
	})
}

// FuzzRoundTrip checks that any sequence of field values that encodes
// successfully decodes to identical events.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(5), uint32(1), uint8(4), uint64(9), int64(0), int64(100), uint8(1), uint32(2))
	f.Add(int64(0), uint32(0), uint8(8), uint64(0), int64(0), int64(0), uint8(0), uint32(0))
	// Offset+Length wrapping int64: must be rejected at Write, never encoded.
	f.Add(int64(1), uint32(1), uint8(4), uint64(3), int64(math.MaxInt64), int64(1), uint8(0), uint32(0))
	f.Add(int64(1), uint32(1), uint8(3), uint64(3), int64(1), int64(math.MaxInt64), uint8(0), uint32(0))
	f.Fuzz(func(t *testing.T, tm int64, client uint32, op uint8, file uint64,
		off, length int64, flags uint8, target uint32) {
		e := Event{
			Time: tm, Client: client, Op: Op(op), File: file,
			Offset: off, Length: length, Flags: flags, Target: target,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Name: "rt"})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(e); err != nil {
			return // invalid event rejected at write time
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		// Fields not carried for this op are normalized to zero on decode.
		want := e
		switch e.Op {
		case OpRead, OpWrite:
			want.Flags, want.Target = 0, 0
		case OpOpen:
			want.Length, want.Target = 0, 0
		case OpMigrate:
			want.Length, want.Flags = 0, 0
		default:
			want.Length, want.Flags, want.Target = 0, 0, 0
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, got)
		}
	})
}

// TestValidateOffsetLengthOverflow pins the adversarial-event rejection: an
// Offset+Length pair that wraps int64 must fail validation (and therefore
// Write), not flow downstream as a negative range end.
func TestValidateOffsetLengthOverflow(t *testing.T) {
	bad := []Event{
		{Time: 1, Client: 1, Op: OpWrite, File: 1, Offset: math.MaxInt64, Length: 1},
		{Time: 1, Client: 1, Op: OpRead, File: 1, Offset: 1, Length: math.MaxInt64},
		{Time: 1, Client: 1, Op: OpWrite, File: 1, Offset: math.MaxInt64 - 9, Length: 10},
	}
	for _, e := range bad {
		err := e.Validate()
		if err == nil {
			t.Fatalf("overflowing event accepted: %+v", e)
		}
		if !strings.Contains(err.Error(), "overflows") {
			t.Fatalf("unexpected error for %+v: %v", e, err)
		}
	}
	ok := Event{Time: 1, Client: 1, Op: OpWrite, File: 1, Offset: math.MaxInt64 - 10, Length: 10}
	if err := ok.Validate(); err != nil {
		t.Fatalf("boundary event rejected: %v", err)
	}
}

// TestReaderRejectsClockWrap pins the decode-side monotonicity guarantee:
// a time delta that would wrap the int64 clock (the only way a delta-coded
// stream can go backwards in time) is rejected with the event's position.
func TestReaderRejectsClockWrap(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "wrap"})
	if err != nil {
		t.Fatal(err)
	}
	// NewWriter flushes the header; splice hand-rolled events after it — a
	// valid first one, then one with a clock-wrapping delta (which the
	// Writer itself can't produce).
	_ = w
	raw := buf.Bytes()
	raw = append(raw, 7, byte(OpFsync), 1, 1, 0) // dt=7, client=1, file=1, offset=0
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], math.MaxUint64)
	raw = append(raw, tmp[:n]...)
	raw = append(raw, byte(OpFsync))
	raw = append(raw, 1, 2, 0) // client, file, offset varints

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatalf("first event: %v", err)
	}
	_, err = r.Read()
	if err == nil {
		t.Fatal("clock-wrapping delta accepted")
	}
	if !strings.Contains(err.Error(), "event 1") || !strings.Contains(err.Error(), "wraps the clock") {
		t.Fatalf("unpositioned or wrong error: %v", err)
	}
}
