package trace

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must reject or
// cleanly EOF on any input — never panic, never allocate absurdly — and
// any event it does yield must be valid.
func FuzzReader(f *testing.F) {
	// Seed with a well-formed trace and a few mutations of it.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "seed", Clients: 3, Duration: time.Hour, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range sampleEvents() {
		if err := w.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("NVFT"))
	f.Add([]byte{})
	mutated := append([]byte(nil), good...)
	if len(mutated) > 10 {
		mutated[8] ^= 0xff
		mutated[len(mutated)-3] ^= 0x55
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		for i := 0; i < 100000; i++ {
			e, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // corruption detected cleanly
			}
			if verr := e.Validate(); verr != nil {
				t.Fatalf("reader yielded invalid event %+v: %v", e, verr)
			}
		}
	})
}

// FuzzRoundTrip checks that any sequence of field values that encodes
// successfully decodes to identical events.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(5), uint16(1), uint8(4), uint64(9), int64(0), int64(100), uint8(1), uint16(2))
	f.Add(int64(0), uint16(0), uint8(8), uint64(0), int64(0), int64(0), uint8(0), uint16(0))
	f.Fuzz(func(t *testing.T, tm int64, client uint16, op uint8, file uint64,
		off, length int64, flags uint8, target uint16) {
		e := Event{
			Time: tm, Client: client, Op: Op(op), File: file,
			Offset: off, Length: length, Flags: flags, Target: target,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Name: "rt"})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(e); err != nil {
			return // invalid event rejected at write time
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		// Fields not carried for this op are normalized to zero on decode.
		want := e
		switch e.Op {
		case OpRead, OpWrite:
			want.Flags, want.Target = 0, 0
		case OpOpen:
			want.Length, want.Target = 0, 0
		case OpMigrate:
			want.Length, want.Flags = 0, 0
		default:
			want.Length, want.Flags, want.Target = 0, 0, 0
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, got)
		}
	})
}
