// Package trace defines the file-system trace event model and a compact
// binary trace format with streaming reader and writer.
//
// The original study replayed eight 24-hour traces of the Sprite distributed
// file system. Those tapes recorded key file-system operations — opens,
// closes, reads, writes, seeks, truncations, deletions, fsyncs, and process
// migrations — with the current file offset in each event so that the order
// and amount of read and write traffic could be deduced. This package
// provides the equivalent event stream for our synthetic traces: each event
// carries an explicit byte offset and length, a client id, and a simulated
// timestamp in microseconds.
package trace

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Op identifies the kind of a trace event.
type Op uint8

// Trace event kinds. The set mirrors the operations the Sprite traces
// recorded and the simulator consumes.
const (
	// OpOpen opens a file. Flags records the access mode.
	OpOpen Op = iota + 1
	// OpClose closes a file previously opened by the same client.
	OpClose
	// OpRead reads Length bytes at Offset.
	OpRead
	// OpWrite writes Length bytes at Offset.
	OpWrite
	// OpTruncate sets the file size to Offset, discarding bytes beyond it.
	OpTruncate
	// OpDelete removes the file; all of its bytes die.
	OpDelete
	// OpFsync synchronously flushes the file's dirty data toward stable
	// storage (in Sprite, all the way to the server's disk).
	OpFsync
	// OpMigrate moves a process from Client to Target; Sprite flushes the
	// source client's dirty data for files the process has open.
	OpMigrate

	opMax
)

var opNames = [...]string{
	OpOpen:     "open",
	OpClose:    "close",
	OpRead:     "read",
	OpWrite:    "write",
	OpTruncate: "truncate",
	OpDelete:   "delete",
	OpFsync:    "fsync",
	OpMigrate:  "migrate",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined event kind.
func (o Op) Valid() bool { return o >= OpOpen && o < opMax }

// Open flags.
const (
	// FlagRead marks an open for reading.
	FlagRead uint8 = 1 << iota
	// FlagWrite marks an open for writing.
	FlagWrite
)

// Event is a single trace record. Times are simulated microseconds from the
// start of the trace. FileID identifies a file across the whole cluster
// (Sprite file handles are cluster-wide).
type Event struct {
	Time   int64  // microseconds since trace start
	Client uint32 // workstation issuing the operation
	Op     Op
	File   uint64 // cluster-wide file identifier
	Offset int64  // byte offset (new size for truncate)
	Length int64  // byte count for read/write
	Flags  uint8  // open mode for OpOpen
	Target uint32 // destination client for OpMigrate
}

// Validate checks internal consistency of a single event.
func (e *Event) Validate() error {
	switch {
	case !e.Op.Valid():
		return fmt.Errorf("trace: invalid op %d", e.Op)
	case e.Time < 0:
		return fmt.Errorf("trace: negative time %d", e.Time)
	case e.Offset < 0:
		return fmt.Errorf("trace: negative offset %d in %v", e.Offset, e.Op)
	case e.Length < 0:
		return fmt.Errorf("trace: negative length %d in %v", e.Length, e.Op)
	case e.Offset > math.MaxInt64-e.Length:
		// Offset+Length is computed throughout the pipeline (range ends,
		// byte accounting); a pair that wraps int64 is adversarial input.
		return fmt.Errorf("trace: offset %d + length %d overflows in %v", e.Offset, e.Length, e.Op)
	case (e.Op == OpRead || e.Op == OpWrite) && e.Length == 0:
		return fmt.Errorf("trace: zero-length %v", e.Op)
	case e.Op == OpOpen && e.Flags&(FlagRead|FlagWrite) == 0:
		return errors.New("trace: open without access mode")
	}
	return nil
}

func (e Event) String() string {
	switch e.Op {
	case OpRead, OpWrite:
		return fmt.Sprintf("%8dus c%d %-8s f%d [%d,+%d)", e.Time, e.Client, e.Op, e.File, e.Offset, e.Length)
	case OpTruncate:
		return fmt.Sprintf("%8dus c%d %-8s f%d size=%d", e.Time, e.Client, e.Op, e.File, e.Offset)
	case OpMigrate:
		return fmt.Sprintf("%8dus c%d %-8s -> c%d", e.Time, e.Client, e.Op, e.Target)
	case OpOpen:
		return fmt.Sprintf("%8dus c%d %-8s f%d flags=%d", e.Time, e.Client, e.Op, e.File, e.Flags)
	default:
		return fmt.Sprintf("%8dus c%d %-8s f%d", e.Time, e.Client, e.Op, e.File)
	}
}

// Header describes a trace file.
type Header struct {
	// Name labels the trace (e.g. "trace3").
	Name string
	// Clients is the number of client workstations appearing in the trace.
	Clients int
	// Duration is the trace length.
	Duration time.Duration
	// Seed is the generator seed that produced the trace, for provenance.
	Seed int64
}

// Microseconds in common trace durations.
const (
	Second = int64(1e6)
	Minute = 60 * Second
	Hour   = 60 * Minute
	Day    = 24 * Hour
)

// EventSource is a pull cursor over a trace event stream: Next returns the
// next event, or ok=false at the end of the stream. Sources are single-use
// and not safe for concurrent callers. The streaming pipeline threads this
// cursor from the workload generator (or a trace file Reader) through prep
// canonicalization into the simulators, so no stage materializes the trace.
type EventSource interface {
	Next() (e Event, ok bool, err error)
}

// SliceSource adapts an in-memory event slice to an EventSource; tests use
// it to compare the streaming pipeline against materialized inputs.
type SliceSource struct {
	evs []Event
	i   int
}

// NewSliceSource returns a cursor over evs. The slice is not copied.
func NewSliceSource(evs []Event) *SliceSource { return &SliceSource{evs: evs} }

// Next implements EventSource.
func (s *SliceSource) Next() (Event, bool, error) {
	if s.i >= len(s.evs) {
		return Event{}, false, nil
	}
	e := s.evs[s.i]
	s.i++
	return e, true, nil
}

// TeeSource forwards an event stream while writing every event into a
// Writer, so one generation pass can feed an encoder and a downstream
// consumer (canonicalization, statistics) simultaneously. The caller
// still owns the Writer and must Close it after the stream ends.
type TeeSource struct {
	Src EventSource
	W   *Writer
}

// Next implements EventSource.
func (t *TeeSource) Next() (Event, bool, error) {
	e, ok, err := t.Src.Next()
	if err != nil || !ok {
		return e, ok, err
	}
	if err := t.W.Write(e); err != nil {
		return Event{}, false, err
	}
	return e, true, nil
}
