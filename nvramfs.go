// Package nvramfs reproduces the systems and experiments of Baker, Asami,
// Deprit, Ousterhout & Seltzer, "Non-Volatile Memory for Fast, Reliable
// File Systems" (ASPLOS V, 1992).
//
// The library contains two trace-driven simulation studies:
//
//   - Client-side NVRAM file caches (paper Section 2): synthetic
//     Sprite-like multi-client traces are replayed through the volatile,
//     write-aside, and unified cache organizations under LRU, random, and
//     omniscient replacement, with Sprite's cache-consistency protocol
//     (recalls, concurrent write-sharing, migration flushes) in the loop.
//
//   - Server-side NVRAM write buffers for a log-structured file system
//     (Section 3): workload models of the Sprite server's eight LFS
//     volumes drive a segment-based LFS simulator — with summary and
//     metadata overheads, a 30-second delayed write-back, fsync-forced
//     partial segments, and a garbage collector — with and without a
//     half-megabyte NVRAM buffer in front of the disk.
//
// Quick start:
//
//	tr, _ := nvramfs.StandardTrace(7, 1.0)
//	res, _ := tr.RunCache(nvramfs.CacheConfig{
//		Model: "unified", Policy: "lru", VolatileMB: 8, NVRAMMB: 1,
//	})
//	fmt.Printf("net write traffic: %.1f%%\n", res.Traffic.NetWriteFrac()*100)
//
// The report helpers (Figure2 .. Table4) regenerate every table and figure
// of the paper's evaluation; cmd/nvreport prints them all.
package nvramfs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"nvramfs/internal/cache"
	"nvramfs/internal/crash"
	"nvramfs/internal/disk"
	"nvramfs/internal/engine"
	"nvramfs/internal/faults"
	"nvramfs/internal/fleet"
	"nvramfs/internal/lfs"
	"nvramfs/internal/lifetime"
	"nvramfs/internal/nvram"
	"nvramfs/internal/prep"
	"nvramfs/internal/report"
	"nvramfs/internal/serverload"
	"nvramfs/internal/sim"
	"nvramfs/internal/trace"
	"nvramfs/internal/workload"
)

// Re-exported result and helper types. These are the package's public
// data model; the implementation lives in internal packages.
type (
	// Traffic is the client-server traffic accounting of one simulation.
	Traffic = cache.Traffic
	// CacheResult is the outcome of a client cache simulation.
	CacheResult = sim.Result
	// Lifetime is the infinite-cache byte-lifetime analysis (Figure 2,
	// Table 2).
	Lifetime = lifetime.Analysis
	// Fate tallies written bytes into the Table 2 categories.
	Fate = lifetime.Fate
	// LFSStats holds the server file-system measurements (Tables 3-4).
	LFSStats = lfs.Stats
	// TraceStats summarizes a canonicalized trace.
	TraceStats = prep.Stats
	// Workspace caches trace passes shared between experiments. Its
	// builds run under per-trace singleflight, so one workspace may be
	// used from many goroutines; SetEngine controls the parallelism of
	// the experiment drivers below.
	Workspace = report.Workspace
	// Engine is the concurrent experiment runner the drivers submit
	// their job grids to: a worker pool with context cancellation on
	// first error and progress/metrics hooks. Results are always
	// assembled in deterministic index order, so experiment output is
	// byte-identical at any worker count.
	Engine = engine.Engine
	// EngineHooks observe job starts and finishes (cmd/nvreport's
	// -progress flag uses them).
	EngineHooks = engine.Hooks
	// EngineMetrics is a snapshot of an engine's job counters.
	EngineMetrics = engine.Metrics

	// Experiment results, one per table/figure.
	Figure2Result      = report.Figure2Result
	Table2Result       = report.Table2Result
	PolicySweepResult  = report.PolicySweepResult
	ModelCompareResult = report.ModelCompareResult
	BusResult          = report.BusResult
	ServerStudyResult  = report.ServerStudyResult
	SortedBufferResult = report.SortedBufferResult
	CostStudyResult    = report.CostStudyResult
	AblationResult     = report.AblationResult
	ServerCacheResult  = report.ServerCacheResult
	LatencyResult      = report.LatencyResult
	StackResult        = report.StackResult
	ReadResponseResult = report.ReadResponseResult
	ReliabilityResult  = report.ReliabilityResult
	DegradedResult     = report.DegradedResult
	FleetResult        = report.FleetResult
	FleetOptions       = report.FleetOptions

	// Experiment is one registered nvreport experiment (name plus a
	// one-line description); see Experiments.
	Experiment = report.Experiment

	// FleetRunOptions configures a direct fleet simulation (shard count,
	// placement slots, shared server cluster); FleetProfile describes its
	// synthetic population.
	FleetRunOptions = fleet.Options
	FleetProfile    = workload.FleetProfile
	FleetRunResult  = fleet.Result
	FleetPlacement  = fleet.Placement

	// FaultStats is the fault-injection stage's counter snapshot: retry
	// and backoff activity, degradation costs (stall time, shed bytes),
	// and the NVRAM dirty high-water mark while the server was down.
	FaultStats = faults.Stats

	// Crash-injection harness types (internal/crash): the outcome of one
	// fault injected at a trace-event boundary.
	CacheCrashOutcome = crash.CacheOutcome
	LFSCrashOutcome   = crash.LFSOutcome
	LFSCrashConfig    = crash.LFSConfig

	// Tabular is any experiment result exportable as CSV rows.
	Tabular = report.Tabular

	// FS is the log-structured file system simulator, exposed for direct
	// use (segment writes, fsync behavior, checkpoints, crash recovery).
	FS = lfs.FS
	// RecoveryReport describes a crash-recovery outcome.
	RecoveryReport = lfs.RecoveryReport
	// Store is a battery-backed client memory with crash/detach modeling
	// (the paper's Section 4 reliability discussion).
	Store = nvram.Store

	// Image is a file-backed (mmap) NVRAM image: a checksummed record log
	// with crash-consistent commits, reopened and replayed after a kill.
	Image = nvram.Image
	// ImageOptions configures OpenImage (capacity, power-loss shadow).
	ImageOptions = nvram.ImageOptions
	// ImageRecovery describes what reopening an image found: committed
	// records replayed, torn tail discarded.
	ImageRecovery = nvram.ImageRecovery
	// ImageStats counts an image's record and msync activity.
	ImageStats = nvram.ImageStats
	// DurableOutcome is the result of one kill/reopen crash verification
	// against a durable NVRAM image.
	DurableOutcome = crash.DurableOutcome
)

// NumStandardTraces is the number of standard traces (eight 24-hour
// traces, as in the paper).
const NumStandardTraces = workload.NumStandardTraces

// Trace is a file-system trace ready for simulation, held as compact
// delta-encoded bytes. Every simulation entry point streams the trace's
// canonical operations through a fresh decode cursor (Ops), so running a
// trace needs memory proportional to the cache under test, not the trace
// length.
type Trace struct {
	Name  string
	enc   []byte
	stats prep.Stats
}

// encodeProfile synthesizes a workload in one streaming pass that tees
// every event into the binary trace encoder while the canonicalizer
// accumulates statistics; nothing materializes the event or op stream.
func encodeProfile(p workload.Profile) (*Trace, error) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, p.Header())
	if err != nil {
		return nil, err
	}
	c := prep.NewSource(&trace.TeeSource{Src: workload.NewCursor(p), W: w}, prep.Options{Trusted: true})
	for {
		if _, ok, err := c.Next(); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Trace{Name: p.Name, enc: buf.Bytes(), stats: c.Stats()}, nil
}

// StandardTrace synthesizes standard trace i (1..8) at the given volume
// scale (1.0 = paper scale; traces 3 and 4 carry the heavy simulation
// workloads).
func StandardTrace(i int, scale float64) (*Trace, error) {
	if i < 1 || i > NumStandardTraces {
		return nil, fmt.Errorf("nvramfs: trace index %d out of range 1..%d", i, NumStandardTraces)
	}
	return encodeProfile(workload.StandardProfile(i, scale))
}

// WorkloadTemplate writes an example JSON workload profile (the standard
// trace 1 cast) that can be edited and fed back via CustomTrace or
// cmd/nvtrace -config.
func WorkloadTemplate(w io.Writer) error {
	spec := workload.StandardProfile(1, 1.0).Spec()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// CustomTrace synthesizes a trace from a JSON workload profile (see
// workload.ProfileSpec's documentation for the schema; cmd/nvtrace
// -config uses this).
func CustomTrace(config io.Reader) (*Trace, error) {
	p, err := workload.ParseProfile(config)
	if err != nil {
		return nil, err
	}
	return encodeProfile(p)
}

// WriteCustomTrace synthesizes a trace from a JSON workload profile and
// writes it in the binary trace format, returning the event count.
func WriteCustomTrace(w io.Writer, config io.Reader) (int64, error) {
	p, err := workload.ParseProfile(config)
	if err != nil {
		return 0, err
	}
	tw, err := trace.NewWriter(w, p.Header())
	if err != nil {
		return 0, err
	}
	n, err := workload.GenerateToWriter(p, tw)
	if err != nil {
		return n, err
	}
	return n, tw.Close()
}

// ReadTrace loads a trace from the binary trace format (as written by
// cmd/nvtrace or WriteStandardTrace). The encoded bytes are kept as-is;
// one streaming validation pass collects the statistics and rejects
// corrupt or out-of-order input.
func ReadTrace(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	tr, err := trace.NewBytesReader(data)
	if err != nil {
		return nil, err
	}
	// The Reader validates every event and rejects clock regressions at
	// decode, so the canonicalizer can trust the stream.
	c := prep.NewSource(tr, prep.Options{Trusted: true})
	for {
		if _, ok, err := c.Next(); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	return &Trace{Name: tr.Header().Name, enc: data, stats: c.Stats()}, nil
}

// WriteStandardTrace synthesizes standard trace i and writes it in the
// binary trace format, returning the event count.
func WriteStandardTrace(w io.Writer, i int, scale float64) (int64, error) {
	if i < 1 || i > NumStandardTraces {
		return 0, fmt.Errorf("nvramfs: trace index %d out of range 1..%d", i, NumStandardTraces)
	}
	p := workload.StandardProfile(i, scale)
	tw, err := trace.NewWriter(w, p.Header())
	if err != nil {
		return 0, err
	}
	n, err := workload.GenerateToWriter(p, tw)
	if err != nil {
		return n, err
	}
	return n, tw.Close()
}

// Stats returns trace-level totals (events, bytes read/written, files).
func (t *Trace) Stats() TraceStats { return t.stats }

// NumOps returns the number of canonicalized simulation operations —
// the domain of CrashCache's event boundaries (0..NumOps inclusive).
func (t *Trace) NumOps() int { return int(t.stats.Ops) }

// Ops returns a fresh single-use streaming cursor over the trace's
// canonical operations; Trace implements the simulators' replayable
// stream interface, so multi-pass consumers (the LFS crash oracle) ask
// for a new cursor per pass. Cursors are independent: any number may be
// open at once, each decoding the shared bytes on its own.
func (t *Trace) Ops() (prep.Source, error) {
	tr, err := trace.NewBytesReader(t.enc)
	if err != nil {
		return nil, err
	}
	return prep.NewSource(tr, prep.Options{Trusted: true, FilesHint: t.stats.Files}), nil
}

// DumpTrace pretty-prints a trace file's header and first n events (all
// when n <= 0); a trace-inspection aid for cmd/nvtrace -dump.
func DumpTrace(w io.Writer, r io.Reader, n int) error {
	tr, err := trace.NewReader(r)
	if err != nil {
		return err
	}
	h := tr.Header()
	fmt.Fprintf(w, "trace %q: %d clients, %v, seed %d\n", h.Name, h.Clients, h.Duration, h.Seed)
	count := 0
	for n <= 0 || count < n {
		e, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(w, e)
		count++
	}
	fmt.Fprintf(w, "(%d events shown)\n", count)
	return nil
}

// Analyze runs the infinite-cache lifetime analysis (Figure 2, Table 2).
func (t *Trace) Analyze() (*Lifetime, error) {
	src, err := t.Ops()
	if err != nil {
		return nil, err
	}
	return lifetime.AnalyzeWith(src, lifetime.Options{FilesHint: t.stats.Files})
}

// CacheConfig parameterizes a client cache simulation.
type CacheConfig struct {
	// Model is "volatile", "write-aside", or "unified".
	Model string
	// Policy is the NVRAM replacement policy: "lru" (default), "random",
	// or "omniscient" (the omniscient schedule is built automatically).
	Policy string
	// VolatileMB and NVRAMMB size the two memories per client.
	VolatileMB float64
	NVRAMMB    float64
	// WritesOnly ignores read traffic (the paper's Figure 3 methodology).
	WritesOnly bool
	// Seed drives the random policy.
	Seed int64
	// Faults, when non-empty, installs the fault-injection stage on the
	// client→server write-back path: an unreliable network and server
	// model (RPC drops, latency spikes, outage windows) with a retrying,
	// backoff-driven scheduler. The spec grammar is comma-separated
	// key=value pairs; FaultSpecUsage lists the keys.
	Faults string
}

// FaultSpecUsage describes the -faults spec grammar: one line per key
// with its meaning and default.
func FaultSpecUsage() string { return faults.SpecUsage() }

// DescribeFaultSpec validates a fault spec and returns its canonical
// description with every default filled in (including the seed, so a
// run's schedule can be reproduced from the printed banner alone).
func DescribeFaultSpec(spec string) (string, error) {
	p, err := faults.ParseSpec(spec)
	if err != nil {
		return "", err
	}
	return p.Describe(), nil
}

// simConfig translates a CacheConfig into the simulator's configuration.
func (t *Trace) simConfig(cfg CacheConfig) (sim.Config, error) {
	var model cache.ModelKind
	switch cfg.Model {
	case "volatile", "":
		model = cache.ModelVolatile
	case "write-aside":
		model = cache.ModelWriteAside
	case "unified":
		model = cache.ModelUnified
	case "hybrid":
		model = cache.ModelHybrid
	default:
		return sim.Config{}, fmt.Errorf("nvramfs: unknown cache model %q", cfg.Model)
	}
	var policy cache.PolicyKind
	var sched cache.Schedule
	switch cfg.Policy {
	case "lru", "":
		policy = cache.LRU
	case "random":
		policy = cache.Random
	case "omniscient":
		policy = cache.Omniscient
		src, err := t.Ops()
		if err != nil {
			return sim.Config{}, err
		}
		s, err := lifetime.BuildSchedule(src, cache.DefaultBlockSize)
		if err != nil {
			return sim.Config{}, err
		}
		sched = s
	default:
		return sim.Config{}, fmt.Errorf("nvramfs: unknown policy %q", cfg.Policy)
	}
	var fp *faults.Profile
	if cfg.Faults != "" {
		var err error
		fp, err = faults.ParseSpec(cfg.Faults)
		if err != nil {
			return sim.Config{}, err
		}
	}
	return sim.Config{
		Model: model,
		Cache: cache.Config{
			VolatileBlocks: sim.BlocksForBytes(int64(cfg.VolatileMB*float64(sim.MB)), cache.DefaultBlockSize),
			NVRAMBlocks:    sim.BlocksForBytes(int64(cfg.NVRAMMB*float64(sim.MB)), cache.DefaultBlockSize),
			Policy:         policy,
			Schedule:       sched,
		},
		Seed:       cfg.Seed,
		WritesOnly: cfg.WritesOnly,
		FilesHint:  t.stats.Files,
		Faults:     fp,
	}, nil
}

// RunCache simulates the trace under the configured client cache model.
func (t *Trace) RunCache(cfg CacheConfig) (*CacheResult, error) {
	sc, err := t.simConfig(cfg)
	if err != nil {
		return nil, err
	}
	src, err := t.Ops()
	if err != nil {
		return nil, err
	}
	return sim.Run(src, sc)
}

// RunCacheSharded simulates the trace under the configured cache model
// with client-sharded parallelism: `shards` steppers each replay the
// full op stream but simulate only their own clients' caches, running
// on up to `workers` goroutines, and the per-shard results merge into
// exactly RunCache's answer (the merge cross-checks the shards'
// consistency-protocol replicas and fails loudly on divergence).
// shards <= 1 degenerates to RunCache; shards <= 0 and workers <= 0
// pick runtime.GOMAXPROCS(0), capped at 8 shards. Fault injection
// (CacheConfig.Faults) is not shardable and is rejected.
func (t *Trace) RunCacheSharded(cfg CacheConfig, shards, workers int) (*CacheResult, error) {
	sc, err := t.simConfig(cfg)
	if err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 8 {
			shards = 8
		}
	}
	eng := engine.New(workers)
	par := func(n int, fn func(i int) error) error {
		return eng.Nested(context.Background(), n, fn)
	}
	return sim.RunSharded(t, sc, shards, par)
}

// CrashCache simulates the trace's first `at` operations under the
// configured cache model, injects a crash at that event boundary, and
// applies the paper's loss model (internal/crash). at < 0 or beyond the
// trace crashes at the end.
func (t *Trace) CrashCache(cfg CacheConfig, at int) (*CacheCrashOutcome, error) {
	sc, err := t.simConfig(cfg)
	if err != nil {
		return nil, err
	}
	if at < 0 || at > t.NumOps() {
		at = t.NumOps()
	}
	src, err := t.Ops()
	if err != nil {
		return nil, err
	}
	return crash.RunCache(src, sc, at)
}

// CrashLFS feeds the trace's write path to a server LFS, crashes it after
// `at` operations, and recovers through the checkpoint/roll-forward path,
// checking the recovered state against a from-scratch replay oracle.
// at < 0 or beyond the trace crashes at the end.
func (t *Trace) CrashLFS(cfg LFSCrashConfig, at int) (*LFSCrashOutcome, error) {
	if at < 0 || at > t.NumOps() {
		at = t.NumOps()
	}
	return crash.RunLFS(t, cfg, at)
}

// KillReopenCache runs the durable kill/reopen harness on the client
// cache path: the trace's first `at` operations are simulated with the
// fault stage's NVRAM write-back backlog mirrored into an image file
// under dir, the power is cut at that event boundary, and the image is
// reopened and verified against an in-memory oracle replay — zero
// committed-byte loss, element-wise. The configuration must carry a
// fault spec (the image holds the parked backlog). at < 0 or beyond the
// trace kills at the end.
func (t *Trace) KillReopenCache(cfg CacheConfig, dir string, at int) (*DurableOutcome, error) {
	sc, err := t.simConfig(cfg)
	if err != nil {
		return nil, err
	}
	if at < 0 || at > t.NumOps() {
		at = t.NumOps()
	}
	return crash.KillReopenCache(t, sc, dir, at, nil)
}

// KillReopenLFS runs the durable kill/reopen harness on the server LFS
// path: the write buffer and checkpoint mirror into an image file under
// dir, the power is cut after `at` operations, and recovery seeded from
// the reopened image must reach the same durable fingerprint as recovery
// from process memory. at < 0 or beyond the trace kills at the end.
func (t *Trace) KillReopenLFS(cfg LFSCrashConfig, dir string, at int) (*DurableOutcome, error) {
	if at < 0 || at > t.NumOps() {
		at = t.NumOps()
	}
	return crash.KillReopenLFS(t, cfg, dir, at, nil)
}

// ServerResult is the outcome of one server file-system run.
type ServerResult struct {
	Name       string
	Stats      LFSStats
	DiskWrites int64
	DiskReads  int64
	// DiskBusy is total disk service time.
	DiskBusy time.Duration
}

// ServerFileSystems lists the eight standard LFS volumes of Tables 3-4.
func ServerFileSystems() []string {
	var names []string
	for _, p := range serverload.StandardProfiles() {
		names = append(names, p.Name)
	}
	return names
}

// RunServer replays the named standard file-system workload (e.g.
// "/user6") for the given duration against the LFS simulator, with an
// optional NVRAM write buffer of bufferBytes in front of the disk
// (0 disables it; the paper studies 512 KiB).
func RunServer(fsName string, duration time.Duration, bufferBytes int64) (*ServerResult, error) {
	p, ok := serverload.ProfileByName(fsName)
	if !ok {
		return nil, fmt.Errorf("nvramfs: unknown file system %q (see ServerFileSystems)", fsName)
	}
	if duration <= 0 {
		duration = serverload.DefaultDuration
	}
	d := disk.New(disk.DefaultParams())
	fs := lfs.New(lfs.Config{Name: fsName, BufferBytes: bufferBytes}, d)
	serverload.Run(p, fs, duration)
	return &ServerResult{
		Name:       fsName,
		Stats:      *fs.Stats(),
		DiskWrites: d.Writes,
		DiskReads:  d.Reads,
		DiskBusy:   d.BusyTime,
	}, nil
}

// NewRecoverableFS builds a log-structured file system on a default disk
// with an optional NVRAM write buffer (0 disables it), for direct
// experimentation with segments, fsync behavior, checkpoints, and crash
// recovery.
func NewRecoverableFS(bufferBytes int64) (*FS, error) {
	if bufferBytes < 0 {
		return nil, fmt.Errorf("nvramfs: negative buffer size %d", bufferBytes)
	}
	return lfs.New(lfs.Config{BufferBytes: bufferBytes}, disk.New(disk.DefaultParams())), nil
}

// NewStore returns a battery-backed store with the given number of
// lithium batteries (Table 1's components carry one to three).
func NewStore(batteries int) *Store { return nvram.NewStore(batteries) }

// OpenImage opens (creating if absent) a durable NVRAM image file: a
// mmap-backed, checksummed record log whose committed records survive
// SIGKILL and — via the two-phase commit protocol — power loss. The
// returned recovery report says what reopening found.
func OpenImage(path string, opts ImageOptions) (*Image, *ImageRecovery, error) {
	return nvram.OpenImage(path, opts)
}

// OpenDurableStore returns a battery-backed store whose non-volatile
// region persists in the image file at path: puts commit to the image
// before they are readable, and a reopened store recovers them.
func OpenDurableStore(path string, batteries int, opts ImageOptions) (*Store, *ImageRecovery, error) {
	return nvram.OpenDurableStore(path, batteries, opts)
}

// NewWorkspace returns a workspace for the experiment drivers below at
// the given workload scale (1.0 = paper scale). Its default engine uses
// every CPU; use SetEngine(NewEngine(n)) to bound or serialize it.
func NewWorkspace(scale float64) *Workspace { return report.NewWorkspace(scale) }

// NewEngine returns a parallel experiment runner with the given worker
// count (<= 0 selects runtime.NumCPU). Pass it to a workspace via
// SetEngine and to the server studies' Context variants.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// Experiment drivers: one per table and figure in the paper's evaluation.
// Each result renders itself as text via its Render method(s).
//
// Every driver has a Context variant that propagates cancellation into
// the job grid (the first error or a cancelled context stops the
// remaining jobs); the plain forms run with context.Background(). Either
// way the sweep cells run concurrently on the workspace's engine and are
// assembled in deterministic index order.

// Figure2 sweeps write-back delay against net write traffic per trace.
func Figure2(ws *Workspace) (*Figure2Result, error) { return report.Figure2(ws) }

// Figure2Context is Figure2 with cancellation.
func Figure2Context(ctx context.Context, ws *Workspace) (*Figure2Result, error) {
	return report.Figure2Context(ctx, ws)
}

// Table2 tallies the fate of every written byte with infinite NVRAM.
func Table2(ws *Workspace) (*Table2Result, error) { return report.Table2(ws) }

// Table2Context is Table2 with cancellation.
func Table2Context(ctx context.Context, ws *Workspace) (*Table2Result, error) {
	return report.Table2Context(ctx, ws)
}

// Figure3 sweeps NVRAM size under the omniscient policy for every trace.
func Figure3(ws *Workspace) (*PolicySweepResult, error) { return report.Figure3(ws) }

// Figure3Context is Figure3 with cancellation.
func Figure3Context(ctx context.Context, ws *Workspace) (*PolicySweepResult, error) {
	return report.Figure3Context(ctx, ws)
}

// Figure4 compares LRU, random, and omniscient replacement on trace 7.
func Figure4(ws *Workspace) (*PolicySweepResult, error) { return report.Figure4(ws) }

// Figure4Context is Figure4 with cancellation.
func Figure4Context(ctx context.Context, ws *Workspace) (*PolicySweepResult, error) {
	return report.Figure4Context(ctx, ws)
}

// Figure5 compares the three cache models' total traffic on trace 7.
func Figure5(ws *Workspace) (*ModelCompareResult, error) { return report.Figure5(ws) }

// Figure5Context is Figure5 with cancellation.
func Figure5Context(ctx context.Context, ws *Workspace) (*ModelCompareResult, error) {
	return report.Figure5Context(ctx, ws)
}

// Figure6 compares volatile vs unified growth from 8 MB and 16 MB bases.
func Figure6(ws *Workspace) (*ModelCompareResult, error) { return report.Figure6(ws) }

// Figure6Context is Figure6 with cancellation.
func Figure6Context(ctx context.Context, ws *Workspace) (*ModelCompareResult, error) {
	return report.Figure6Context(ctx, ws)
}

// BusTraffic measures the Section 2.6 memory-bus and NVRAM-access claims.
func BusTraffic(ws *Workspace) (*BusResult, error) { return report.BusTraffic(ws) }

// BusTrafficContext is BusTraffic with cancellation.
func BusTrafficContext(ctx context.Context, ws *Workspace) (*BusResult, error) {
	return report.BusTrafficContext(ctx, ws)
}

// ServerStudy produces Tables 3-4 and the write-buffer comparison.
func ServerStudy(duration time.Duration) (*ServerStudyResult, error) {
	return report.ServerStudy(duration)
}

// ServerStudyContext is ServerStudy with cancellation, running its
// sixteen LFS replays on eng (nil runs them serially).
func ServerStudyContext(ctx context.Context, eng *Engine, duration time.Duration) (*ServerStudyResult, error) {
	return report.ServerStudyContext(ctx, eng, duration)
}

// SortedBuffer reproduces the buffered-and-sorted write analysis ([20]).
func SortedBuffer() *SortedBufferResult { return report.SortedBuffer() }

// CostStudy derives the Section 2.7 cost-effectiveness verdicts from a
// Figure 6 result.
func CostStudy(fig6 *ModelCompareResult) *CostStudyResult { return report.CostStudy(fig6) }

// RenderTable1 writes the paper's Table 1 NVRAM price list.
func RenderTable1(w io.Writer) error { return report.RenderTable1(w) }

// WriteCSV exports an experiment result's data rows as CSV (for external
// plotting tools).
func WriteCSV(w io.Writer, t Tabular) error { return report.WriteCSV(w, t) }

// Ablations runs the design-choice ablations DESIGN.md calls out: dirty-
// block replacement preference, the hybrid cache organization of Section
// 2.6, and block-level consistency (Section 2.3).
func Ablations(ws *Workspace) (*AblationResult, error) { return report.Ablations(ws) }

// AblationsContext is Ablations with cancellation.
func AblationsContext(ctx context.Context, ws *Workspace) (*AblationResult, error) {
	return report.AblationsContext(ctx, ws)
}

// Reliability runs the crash-injection study: a grid of faults over
// (trace, cache organization, crash point) checking the paper's loss
// bounds — zero committed-byte loss with NVRAM, a bounded write-back
// window without it.
func Reliability(ws *Workspace) (*ReliabilityResult, error) { return report.Reliability(ws) }

// ReliabilityContext is Reliability with cancellation.
func ReliabilityContext(ctx context.Context, ws *Workspace) (*ReliabilityResult, error) {
	return report.ReliabilityContext(ctx, ws)
}

// Degraded runs the graceful-degradation study: every cache
// organization simulated under unreliable-network and server-outage
// fault schedules, measuring retries, writer stall time, bytes shed,
// and the NVRAM dirty high-water mark while the server was unreachable.
func Degraded(ws *Workspace) (*DegradedResult, error) { return report.Degraded(ws) }

// DegradedContext is Degraded with cancellation.
func DegradedContext(ctx context.Context, ws *Workspace) (*DegradedResult, error) {
	return report.DegradedContext(ctx, ws)
}

// Fleet runs the population-scale fleet study: synthetic populations of
// O(10k+) clients streamed against 1/4/16 consistency-server shards
// behind a shared cluster cache, measuring per-shard load balance,
// invalidation-storm fan-out, and tail write-back latency.
func Fleet(ws *Workspace) (*FleetResult, error) { return report.Fleet(ws) }

// FleetContext is Fleet with cancellation.
func FleetContext(ctx context.Context, ws *Workspace) (*FleetResult, error) {
	return report.FleetContext(ctx, ws)
}

// FleetWithOptions is FleetContext with an explicit grid (client counts,
// shard counts, durations); zero fields take the published defaults.
func FleetWithOptions(ctx context.Context, ws *Workspace, opts FleetOptions) (*FleetResult, error) {
	return report.FleetWithOptions(ctx, ws, opts)
}

// RunFleet streams one synthetic population through one fleet directly
// (no experiment grid): the building block the fleet study sweeps.
func RunFleet(p FleetProfile, opts FleetRunOptions) (*FleetRunResult, error) {
	cur, err := workload.NewFleetCursor(p)
	if err != nil {
		return nil, err
	}
	return fleet.Run(cur, opts)
}

// Experiments returns the nvreport experiment registry in report order —
// the single source of truth for -exp names and help text.
func Experiments() []Experiment { return report.Experiments() }

// ServerCacheStudy sweeps a server-side NVRAM cache region over the
// standard file-system workloads (the Section 3 opening remark).
func ServerCacheStudy(duration time.Duration) (*ServerCacheResult, error) {
	return report.ServerCacheStudy(duration)
}

// ServerCacheStudyContext is ServerCacheStudy with cancellation, running
// its (file system, NVRAM size) grid on eng (nil runs it serially).
func ServerCacheStudyContext(ctx context.Context, eng *Engine, duration time.Duration) (*ServerCacheResult, error) {
	return report.ServerCacheStudyContext(ctx, eng, duration)
}

// FsyncLatencyStudy prices fsync latency under volatile, server-NVRAM,
// and client-NVRAM organizations (extension; the paper's Prestoserve and
// IBM 3990 latency motivation).
func FsyncLatencyStudy(ws *Workspace) (*LatencyResult, error) {
	return report.FsyncLatencyStudy(ws)
}

// FsyncLatencyStudyContext is FsyncLatencyStudy with cancellation.
func FsyncLatencyStudyContext(ctx context.Context, ws *Workspace) (*LatencyResult, error) {
	return report.FsyncLatencyStudyContext(ctx, ws)
}

// StackStudy runs the end-to-end pipeline — client caches feeding a file
// server (cache + LFS + disk) — under three NVRAM placements.
func StackStudy(ws *Workspace) (*StackResult, error) { return report.StackStudy(ws) }

// StackStudyContext is StackStudy with cancellation.
func StackStudyContext(ctx context.Context, ws *Workspace) (*StackResult, error) {
	return report.StackStudyContext(ctx, ws)
}

// ReadResponseStudy computes the [3] analysis: read-response increase vs
// LFS write size, and the interference-minimizing write unit.
func ReadResponseStudy() *ReadResponseResult { return report.ReadResponseStudy() }
