#!/bin/sh
# Tier-1 gate (see ROADMAP.md): formatting, vet, build, and the full test
# suite under the race detector. Everything must pass before a merge.
set -eu

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...

# Quick path first: the plain -short suite (including the crash-injection
# sweeps) finishes in seconds and catches most breakage before the full
# -race pass, which takes ~10 minutes on a 1-CPU box.
go test -short ./...

# Fault-injection gate: every fault-stage and degraded-mode test by name
# (injector semantics, outage degradation per organization, crash
# composition, determinism across worker counts), without the race
# detector so it stays quick.
go test -run 'Fault|Degraded' -count=1 ./...

go test -race ./...

# Bench smoke: one iteration of every benchmark under the race detector, so
# benchmarks can't rot (and the allocation-budget tests above can't drift
# from what the benchmarks actually exercise).
go test -race -run '^$' -bench . -benchtime 1x ./...
