#!/bin/sh
# Tier-1 gate (see ROADMAP.md): formatting, vet, build, and the full test
# suite under the race detector. Everything must pass before a merge.
set -eu

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...

# Doc lint: every internal package must carry a package comment (the doc.go
# convention) — godoc and pkgsite render these as the package synopsis, and
# a silent empty synopsis is how documentation rot starts.
undocumented=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/...)
if [ -n "$undocumented" ]; then
	echo "internal packages missing a package comment:" >&2
	echo "$undocumented" >&2
	exit 1
fi

# Quick path first: the plain -short suite (including the crash-injection
# sweeps) finishes in seconds and catches most breakage before the full
# -race pass, which takes ~15 minutes on a 1-CPU box.
go test -short ./...

# Fault-injection gate: every fault-stage and degraded-mode test by name
# (injector semantics, outage degradation per organization, crash
# composition, determinism across worker counts), without the race
# detector so it stays quick.
go test -run 'Fault|Degraded' -count=1 ./...

# The report sweeps re-canonicalize each trace per pass (the streaming
# pipeline's CPU-for-memory tradeoff), which under the race detector's
# ~10x slowdown pushes the package past go test's default 10m timeout on
# the 1-CPU CI box.
go test -race -timeout 30m ./...

# Bench smoke: one iteration of every benchmark under the race detector, so
# benchmarks can't rot (and the allocation-budget tests above can't drift
# from what the benchmarks actually exercise).
go test -race -run '^$' -bench . -benchtime 1x ./...

# Streaming-memory smoke: peak heap while simulating a steady-live-set
# trace must stay within 2x when the trace is grown 10x longer. Fails
# loudly if any pipeline stage regresses to materializing the trace (or
# retaining per-file state past deletion).
go run ./cmd/nvbench -stream-smoke

# Sharded-pipeline smoke: the Figure 2/3 sweeps rendered sharded at -j 4
# must be byte-identical to the sequential render, and on a box with
# >= 4 CPUs the sharded run must be at least 1.5x faster (the speedup
# gate self-skips on smaller boxes; the divergence gate always runs).
go run ./cmd/nvbench -shard-smoke

# Durable kill/reopen gate: SIGKILL a child process (and cut the power via
# the durable snapshot) at trace-event boundaries, reopen the image file,
# and require recovery to match the in-memory oracle exactly. The -short
# sweep above already runs the sampled version; this runs the durable
# tests by name so a filtered test run can't silently drop them, then the
# nvbench smoke drives the same harness through the public facade.
go test -short -run 'Durable|Image' -count=1 ./internal/crash/ ./internal/nvram/ ./internal/lfs/ ./internal/faults/
go run ./cmd/nvbench -durable-smoke

# Fleet population gate: a 100k-client, 16-shard fleet run must hold peak
# heap within 2x of the 10k-client run (per-client and per-segment state
# has to retire), and the fleet experiment must render byte-identical
# output at -j 1 and -j 8.
go run ./cmd/nvbench -fleet-smoke

# Live-service gate: the daemon's protocol/admission/panic-isolation
# tests, the image lock and corruption-fuzz tests, the wall-clock seam,
# and the live kill/reconnect harness, all by name so a filtered run
# can't silently drop them; then the full cycle against a real nvramd
# binary — load it over TCP under an outage, SIGKILL it mid-backlog,
# restart it, and require the parked backlog to drain with zero
# committed-byte loss (recording the replay ops/s + p99 baseline).
go test -run 'Daemon|Live|Lock|Corrupt|Clock|Frame|Reservoir' -count=1 \
	./internal/daemon/ ./internal/crash/ ./internal/nvram/ ./internal/faults/ ./internal/trace/ ./internal/stats/
go run ./cmd/nvbench -daemon-smoke
