#!/bin/sh
# Tier-1 gate (see ROADMAP.md): formatting, vet, build, and the full test
# suite under the race detector. Everything must pass before a merge.
set -eu

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...
