package nvramfs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestStandardTraceAndRunCache(t *testing.T) {
	tr, err := StandardTrace(1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "trace1" || tr.Stats().BytesWritten == 0 {
		t.Fatalf("trace: %s %+v", tr.Name, tr.Stats())
	}
	for _, model := range []string{"volatile", "write-aside", "unified"} {
		res, err := tr.RunCache(CacheConfig{Model: model, VolatileMB: 8, NVRAMMB: 1})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if res.Traffic.AppWriteBytes != tr.Stats().BytesWritten {
			t.Fatalf("%s: app writes %d != trace writes %d", model,
				res.Traffic.AppWriteBytes, tr.Stats().BytesWritten)
		}
	}
}

func TestRunCachePolicies(t *testing.T) {
	tr, err := StandardTrace(2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"lru", "random", "omniscient"} {
		if _, err := tr.RunCache(CacheConfig{Model: "unified", Policy: pol, VolatileMB: 4, NVRAMMB: 0.5}); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
	if _, err := tr.RunCache(CacheConfig{Model: "bogus"}); err == nil {
		t.Fatal("bogus model accepted")
	}
	if _, err := tr.RunCache(CacheConfig{Model: "unified", Policy: "bogus", VolatileMB: 4, NVRAMMB: 1}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteStandardTrace(&buf, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events written")
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := StandardTrace(5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats() != direct.Stats() {
		t.Fatalf("file trace stats %+v != direct %+v", tr.Stats(), direct.Stats())
	}
}

func TestAnalyzeFacade(t *testing.T) {
	tr, err := StandardTrace(1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	an, err := tr.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if an.Fate.Total != tr.Stats().BytesWritten {
		t.Fatal("fate total mismatch")
	}
}

func TestRunServerFacade(t *testing.T) {
	res, err := RunServer("/user6", 2*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fsyncs == 0 || res.DiskWrites == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if _, err := RunServer("/missing", time.Hour, 0); err == nil {
		t.Fatal("unknown file system accepted")
	}
	if len(ServerFileSystems()) != 8 {
		t.Fatal("file system list wrong")
	}
}

func TestStandardTraceValidation(t *testing.T) {
	if _, err := StandardTrace(0, 1); err == nil {
		t.Fatal("trace 0 accepted")
	}
	if _, err := StandardTrace(9, 1); err == nil {
		t.Fatal("trace 9 accepted")
	}
	var buf bytes.Buffer
	if _, err := WriteStandardTrace(&buf, 0, 1); err == nil {
		t.Fatal("write of trace 0 accepted")
	}
}

func TestRenderTable1Facade(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SIMM") {
		t.Fatal("table 1 missing rows")
	}
}

// TestModelOrderingInvariants checks the paper's qualitative ordering on a
// generated trace: adding NVRAM to the baseline can only reduce write
// traffic, and the unified model's total traffic beats write-aside's given
// the same memories (it serves reads from the NVRAM too).
func TestModelOrderingInvariants(t *testing.T) {
	tr, err := StandardTrace(2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	run := func(model string, volMB, nvMB float64) *CacheResult {
		res, err := tr.RunCache(CacheConfig{Model: model, VolatileMB: volMB, NVRAMMB: nvMB})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		return res
	}
	base := run("volatile", 8, 0)
	uni := run("unified", 8, 2)
	wa := run("write-aside", 8, 2)
	hyb := run("hybrid", 8, 2)

	if uni.Traffic.NetWriteFrac() > base.Traffic.NetWriteFrac() {
		t.Errorf("unified write traffic %.3f exceeds baseline %.3f",
			uni.Traffic.NetWriteFrac(), base.Traffic.NetWriteFrac())
	}
	if wa.Traffic.NetWriteFrac() > base.Traffic.NetWriteFrac() {
		t.Errorf("write-aside write traffic %.3f exceeds baseline %.3f",
			wa.Traffic.NetWriteFrac(), base.Traffic.NetWriteFrac())
	}
	if uni.Traffic.NetTotalFrac() > wa.Traffic.NetTotalFrac()+0.02 {
		t.Errorf("unified total %.3f worse than write-aside %.3f",
			uni.Traffic.NetTotalFrac(), wa.Traffic.NetTotalFrac())
	}
	// The hybrid never exposes more than it writes and its NVRAM share is
	// protected.
	if hyb.Traffic.VulnerableWriteBytes > hyb.Traffic.AppWriteBytes {
		t.Error("hybrid vulnerable bytes exceed app writes")
	}
}

// TestCacheRunDeterminism: identical configurations produce identical
// traffic, including the random policy (seeded).
func TestCacheRunDeterminism(t *testing.T) {
	tr, err := StandardTrace(6, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CacheConfig{Model: "unified", Policy: "random", VolatileMB: 4, NVRAMMB: 0.5, Seed: 11}
	a, err := tr.RunCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.RunCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Traffic != b.Traffic {
		t.Fatal("same configuration produced different traffic")
	}
}

// TestServerDeterminism: the server study is reproducible too.
func TestServerDeterminism(t *testing.T) {
	a, err := RunServer("/user1", 6*time.Hour, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServer("/user1", 6*time.Hour, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.DiskWrites != b.DiskWrites {
		t.Fatal("server runs differ")
	}
}

// TestConservationAcrossModels: application bytes are conserved — server
// writes plus absorbed bytes plus still-cached-at-end equals... since the
// end-of-trace flush counts remaining as traffic, server writes + absorbed
// must equal application writes exactly for NVRAM models (no cleaner
// duplication: each dirty byte is flushed or dies exactly once).
func TestConservationAcrossModels(t *testing.T) {
	tr, err := StandardTrace(5, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"unified", "write-aside"} {
		res, err := tr.RunCache(CacheConfig{Model: model, VolatileMB: 8, NVRAMMB: 1})
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Traffic
		got := tr.ServerWriteBytes() + tr.AbsorbedBytes()
		if got != tr.AppWriteBytes {
			t.Errorf("%s: server+absorbed = %d, app writes = %d", model, got, tr.AppWriteBytes)
		}
	}
}

// TestFacadeExperiments exercises every experiment entry point at tiny
// scale, verifying the public API is fully wired.
func TestFacadeExperiments(t *testing.T) {
	ws := NewWorkspace(0.02)
	if _, err := Figure2(ws); err != nil {
		t.Fatal(err)
	}
	if _, err := Table2(ws); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure3(ws); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure4(ws); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure5(ws); err != nil {
		t.Fatal(err)
	}
	fig6, err := Figure6(ws)
	if err != nil {
		t.Fatal(err)
	}
	if cs := CostStudy(fig6); len(cs.Rows) == 0 {
		t.Fatal("empty cost study")
	}
	if _, err := BusTraffic(ws); err != nil {
		t.Fatal(err)
	}
	if _, err := ServerStudy(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := ServerCacheStudy(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := FsyncLatencyStudy(ws); err != nil {
		t.Fatal(err)
	}
	if _, err := StackStudy(ws); err != nil {
		t.Fatal(err)
	}
	if _, err := Ablations(ws); err != nil {
		t.Fatal(err)
	}
	if r := ReadResponseStudy(); len(r.WriteUnitKB) == 0 {
		t.Fatal("empty read-response study")
	}
	if r := SortedBuffer(); len(r.Depths) == 0 {
		t.Fatal("empty sorted-buffer study")
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, fig6); err != nil {
		t.Fatal(err)
	}
}

func TestCustomTraceFacade(t *testing.T) {
	config := `{"name": "custom", "seed": 3, "duration_hours": 1, "scale": 0.1,
		"actors": [{"kind": "editor", "client": 1}, {"kind": "log", "client": 2}]}`
	tr, err := CustomTrace(strings.NewReader(config))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "custom" || tr.Stats().BytesWritten == 0 {
		t.Fatalf("custom trace: %+v", tr.Stats())
	}
	var buf bytes.Buffer
	n, err := WriteCustomTrace(&buf, strings.NewReader(config))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events written")
	}
	var dump bytes.Buffer
	if err := DumpTrace(&dump, bytes.NewReader(buf.Bytes()), 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "custom") {
		t.Fatal("dump missing header")
	}
	if _, err := CustomTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewRecoverableFS(-1); err == nil {
		t.Fatal("negative buffer accepted")
	}
}

func TestWorkloadTemplateRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WorkloadTemplate(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := CustomTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("template does not round-trip: %v", err)
	}
	if tr.Name != "trace1" {
		t.Fatalf("template trace name %q", tr.Name)
	}
}
