// lfsbuffer runs the paper's Section 3 experiment: replay each standard
// server file-system workload against the log-structured file system
// simulator, with and without a half-megabyte NVRAM write buffer in front
// of the disk, and report the partial-segment statistics and disk-access
// savings.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"nvramfs"
)

func main() {
	days := flag.Float64("days", 2, "measurement period in days (the paper used 14)")
	flag.Parse()
	duration := time.Duration(*days * float64(24*time.Hour))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "LFS write-buffer study, %.0f-day run, 512 KB buffer\n\n", *days)
	fmt.Fprintln(tw, "file system\tpartial %\tfsync partial %\tKB/partial\tdisk writes\twith buffer\tsaved %")
	for _, name := range nvramfs.ServerFileSystems() {
		plain, err := nvramfs.RunServer(name, duration, 0)
		if err != nil {
			log.Fatal(err)
		}
		buffered, err := nvramfs.RunServer(name, duration, 512<<10)
		if err != nil {
			log.Fatal(err)
		}
		st := plain.Stats
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%d\t%d\t%.1f\n",
			name,
			st.PartialFrac()*100,
			st.FsyncPartialFrac()*100,
			st.KBPerPartial(),
			plain.DiskWrites,
			buffered.DiskWrites,
			100*(1-float64(buffered.DiskWrites)/float64(plain.DiskWrites)))
	}
	tw.Flush()

	fmt.Println("\nThe fsync-dominated file system (/user6, a database benchmark issuing")
	fmt.Println("five fsyncs per transaction) loses ~90% of its disk writes to forced")
	fmt.Println("partial segments; the buffer absorbs them until full segments form.")
}
