// endtoend runs the full storage hierarchy in one simulation: client
// caches feed a file server (cache + log-structured file system + disk)
// through the library's traffic hooks, so NVRAM's effect is visible at
// every level at once — network write traffic, forced partial segments,
// and disk accesses.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nvramfs"
)

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale (1.0 = paper scale)")
	flag.Parse()

	fmt.Println("Replaying trace 7 through three configurations:")
	fmt.Println("  1. volatile client caches, plain server (the pre-NVRAM world)")
	fmt.Println("  2. one megabyte of NVRAM in each client cache (paper Section 2)")
	fmt.Println("  3. client NVRAM plus a server NVRAM region (paper Section 3)")
	fmt.Println()

	ws := nvramfs.NewWorkspace(*scale)
	res, err := nvramfs.StackStudy(ws)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	base, cli, both := res.Rows[0], res.Rows[1], res.Rows[2]
	fmt.Println()
	fmt.Printf("client NVRAM cut network write traffic %.0f%% -> %.0f%% and disk writes %.1fx\n",
		base.NetWriteFrac*100, cli.NetWriteFrac*100,
		float64(base.ServerDiskWrites)/float64(cli.ServerDiskWrites))
	fmt.Printf("adding server NVRAM collapsed partial segments %d -> %d (disk writes %.0fx down overall)\n",
		cli.PartialSegments, both.PartialSegments,
		float64(base.ServerDiskWrites)/float64(both.ServerDiskWrites))
}
