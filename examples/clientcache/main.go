// clientcache compares the paper's three client cache organizations —
// volatile, write-aside, and unified — as memory is added, reproducing the
// shape of Figure 5, and shows the replacement-policy comparison of
// Figure 4 on the same trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"nvramfs"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper scale; smaller scales shrink working sets and flatten the memory-size curves)")
	traceIdx := flag.Int("trace", 7, "standard trace index 1..8")
	flag.Parse()

	tr, err := nvramfs.StandardTrace(*traceIdx, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %s at scale %.2f\n\n", tr.Name, *scale)

	// Cache models: each starts from 8 MB of volatile memory; the
	// volatile series adds volatile memory, the NVRAM series add NVRAM.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "extra MB\tvolatile\twrite-aside\tunified\t(net total traffic %)")
	for _, extra := range []float64{0, 1, 2, 4, 8} {
		fmt.Fprintf(tw, "%.0f", extra)
		for _, model := range []string{"volatile", "write-aside", "unified"} {
			cfg := nvramfs.CacheConfig{Model: model, VolatileMB: 8, NVRAMMB: extra}
			if model == "volatile" {
				cfg.VolatileMB, cfg.NVRAMMB = 8+extra, 0
			}
			if extra == 0 && model != "volatile" {
				cfg.Model = "volatile" // all series share their origin
			}
			res, err := tr.RunCache(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t%.1f", res.Traffic.NetTotalFrac()*100)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	// Replacement policies in the unified model (Figure 4's comparison):
	// the paper's surprise is that random does nearly as well as LRU.
	fmt.Println("\nreplacement policies, unified model (net write traffic %):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NVRAM MB\tlru\trandom\tomniscient")
	for _, mb := range []float64{0.125, 0.5, 1, 4} {
		fmt.Fprintf(tw, "%.3f", mb)
		for _, pol := range []string{"lru", "random", "omniscient"} {
			res, err := tr.RunCache(nvramfs.CacheConfig{
				Model: "unified", Policy: pol, VolatileMB: 8, NVRAMMB: mb,
				WritesOnly: pol == "omniscient", // Figure 3/4 methodology
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t%.1f", res.Traffic.NetWriteFrac()*100)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
