// costmodel reproduces the paper's economic argument (Table 1 and Section
// 2.7): at 1992 prices, when is NVRAM a better buy than more volatile
// memory for a client cache?
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nvramfs"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper scale; smaller scales shrink working sets and flatten the memory-size curves)")
	flag.Parse()

	// Table 1: the raw component prices.
	if err := nvramfs.RenderTable1(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Measure the benefit curves (Figure 6): volatile vs unified growth
	// from 8 MB and 16 MB bases on the typical trace.
	fmt.Println("\nmeasuring traffic curves (Figure 6)...")
	ws := nvramfs.NewWorkspace(*scale)
	fig6, err := nvramfs.Figure6(ws)
	if err != nil {
		log.Fatal(err)
	}
	if err := fig6.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Price the equivalences: how much volatile memory buys the same
	// traffic reduction as each NVRAM amount, and which is cheaper.
	fmt.Println()
	if err := nvramfs.CostStudy(fig6).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe paper's conclusion: with only 8 MB of volatile cache, volatile")
	fmt.Println("memory is the better buy at 1992 prices; once the volatile cache is")
	fmt.Println("large (16 MB), read traffic is saturated and a small NVRAM buys a")
	fmt.Println("write-traffic reduction volatile memory cannot match at any price.")
}
