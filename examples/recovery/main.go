// recovery demonstrates the reliability machinery behind the paper's
// Section 4 discussion: a log-structured file system with checkpoint and
// roll-forward recovery, an NVRAM write buffer whose contents survive a
// power failure, and a battery-backed client store whose component can be
// detached and moved to another machine.
package main

import (
	"fmt"
	"log"

	"nvramfs"
)

const sec = int64(1e6)

func main() {
	fmt.Println("--- server crash and roll-forward recovery ---")
	srv, err := nvramfs.NewRecoverableFS(512 << 10) // with a 512 KB NVRAM buffer
	if err != nil {
		log.Fatal(err)
	}

	// Write some files: one fsync'd (parked in NVRAM), one freshly dirty.
	srv.Write(0, 1, 0, 64<<10)
	srv.Fsync(1*sec, 1) // the database's commit: now in NVRAM
	srv.Write(2*sec, 2, 0, 32<<10)
	srv.Checkpoint(3 * sec)
	srv.Write(4*sec, 3, 0, 16<<10) // dirty at crash time

	rec, report, err := srv.SimulateCrashAndRecover(5 * sec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash at t=5s: checkpoint seq %d, %d segments replayed\n",
		report.CheckpointSeq, report.SegmentsReplayed)
	fmt.Printf("  lost:      %d dirty blocks (volatile server cache)\n", report.LostDirtyBlocks)
	fmt.Printf("  recovered: %d blocks from the NVRAM write buffer\n", report.RecoveredBufferedBlocks)
	rec.Shutdown(10 * sec)
	fmt.Printf("  after recovery + shutdown: %d live blocks on disk\n\n", rec.LiveBlocks())

	fmt.Println("--- client NVRAM component survival (Section 4) ---")
	store := nvramfs.NewStore(2) // two lithium batteries, one spare
	store.PutVolatile("editor-buffer", []byte("unsaved screen state"))
	store.PutNonVolatile("dirty-cache-block", []byte("committed by fsync"))

	store.Crash()
	if _, ok := store.Get("editor-buffer"); !ok {
		fmt.Println("after crash: volatile contents lost")
	}
	if v, ok := store.Get("dirty-cache-block"); ok {
		fmt.Printf("after crash: NVRAM intact: %q\n", v)
	}

	// The paper: "it must be possible to move an NVRAM component to
	// another client and retrieve its data from the new location."
	moved := store.Detach()
	if v, ok := moved.Get("dirty-cache-block"); ok {
		fmt.Printf("after moving the component to another client: %q\n", v)
	}
	moved.FailBattery() // one battery dies; the spare holds
	if _, ok := moved.Get("dirty-cache-block"); ok {
		fmt.Println("after one battery failure: spare battery preserved the data")
	}
}
