// Quickstart: synthesize one day of Sprite-like client activity, replay
// it through a unified NVRAM client cache, and report how much write
// traffic the NVRAM absorbed.
package main

import (
	"fmt"
	"log"

	"nvramfs"
)

func main() {
	// Trace 7 is the paper's "typical trace". Scale 0.25 keeps this demo
	// fast; use 1.0 for paper-scale volumes.
	tr, err := nvramfs.StandardTrace(7, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("trace %s: %d events, %d files, %.1f MB written, %.1f MB read\n",
		tr.Name, st.Events, st.Files,
		float64(st.BytesWritten)/(1<<20), float64(st.BytesRead)/(1<<20))

	// Baseline: a client with an 8 MB volatile cache and Sprite's
	// 30-second delayed write-back.
	base, err := tr.RunCache(nvramfs.CacheConfig{Model: "volatile", VolatileMB: 8})
	if err != nil {
		log.Fatal(err)
	}

	// The same clients with one megabyte of NVRAM integrated into the
	// cache (the paper's unified model): dirty data may die in place.
	nv, err := tr.RunCache(nvramfs.CacheConfig{
		Model: "unified", Policy: "lru", VolatileMB: 8, NVRAMMB: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %14s %14s\n", "", "volatile 8MB", "unified 8+1MB")
	row := func(name string, a, b float64) {
		fmt.Printf("%-28s %13.1f%% %13.1f%%\n", name, a*100, b*100)
	}
	row("net write traffic", base.Traffic.NetWriteFrac(), nv.Traffic.NetWriteFrac())
	row("net total traffic", base.Traffic.NetTotalFrac(), nv.Traffic.NetTotalFrac())
	fmt.Printf("%-28s %13.1f%% %13.1f%%\n", "dirty bytes absorbed",
		100*float64(base.Traffic.AbsorbedBytes())/float64(base.Traffic.AppWriteBytes),
		100*float64(nv.Traffic.AbsorbedBytes())/float64(nv.Traffic.AppWriteBytes))

	reduction := 1 - nv.Traffic.NetWriteFrac()/base.Traffic.NetWriteFrac()
	fmt.Printf("\none megabyte of NVRAM cut client-to-server write traffic by %.0f%%\n", reduction*100)
}
