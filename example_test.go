package nvramfs_test

import (
	"fmt"
	"log"
	"os"
	"time"

	"nvramfs"
)

// The package-level example: synthesize the paper's "typical trace" and
// measure how much client-server write traffic one megabyte of NVRAM
// absorbs under the unified cache model.
func Example() {
	tr, err := nvramfs.StandardTrace(7, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	base, err := tr.RunCache(nvramfs.CacheConfig{Model: "volatile", VolatileMB: 8})
	if err != nil {
		log.Fatal(err)
	}
	nv, err := tr.RunCache(nvramfs.CacheConfig{Model: "unified", VolatileMB: 8, NVRAMMB: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volatile: %.0f%% of written bytes reach the server\n",
		base.Traffic.NetWriteFrac()*100)
	fmt.Printf("unified:  %.0f%%\n", nv.Traffic.NetWriteFrac()*100)
	// Output:
	// volatile: 58% of written bytes reach the server
	// unified:  36%
}

// Replaying a server workload against the LFS simulator with the paper's
// half-megabyte NVRAM write buffer.
func ExampleRunServer() {
	plain, err := nvramfs.RunServer("/user6", 6*time.Hour, 0)
	if err != nil {
		log.Fatal(err)
	}
	buffered, err := nvramfs.RunServer("/user6", 6*time.Hour, 512<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buffer cut /user6 disk writes by %.0f%%\n",
		100*(1-float64(buffered.DiskWrites)/float64(plain.DiskWrites)))
	// Output:
	// buffer cut /user6 disk writes by 98%
}

// The byte-lifetime analysis behind Figure 2 and Table 2.
func ExampleTrace_Analyze() {
	tr, err := nvramfs.StandardTrace(1, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	an, err := tr.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	f := an.Fate
	fmt.Printf("absorbed %.0f%%, called back %.0f%%, remaining %.0f%%\n",
		100*float64(f.Absorbed())/float64(f.Total),
		100*float64(f.CalledBack)/float64(f.Total),
		100*float64(f.Remaining)/float64(f.Total))
	// Output:
	// absorbed 63%, called back 17%, remaining 19%
}

// Crash recovery: fsync'd data survives in the NVRAM write buffer while
// volatile dirty data is lost.
func ExampleFS_SimulateCrashAndRecover() {
	fs, err := nvramfs.NewRecoverableFS(512 << 10)
	if err != nil {
		log.Fatal(err)
	}
	fs.Write(0, 1, 0, 16<<10) // four blocks
	fs.Fsync(1, 1)            // parked in NVRAM
	fs.Write(2, 2, 0, 8<<10)  // two blocks, still volatile

	_, report, err := fs.SimulateCrashAndRecover(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lost %d blocks, recovered %d from NVRAM\n",
		report.LostDirtyBlocks, report.RecoveredBufferedBlocks)
	// Output:
	// lost 2 blocks, recovered 4 from NVRAM
}

// Regenerating one of the paper's figures programmatically (compile-only:
// the rendering is shown by cmd/nvreport).
func ExampleFigure4() {
	ws := nvramfs.NewWorkspace(0.1)
	fig4, err := nvramfs.Figure4(ws)
	if err != nil {
		log.Fatal(err)
	}
	_ = fig4.Render(os.Stdout)
}
